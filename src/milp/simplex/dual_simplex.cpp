#include "milp/simplex/dual_simplex.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "util/simd/simd.h"
#include "util/stopwatch.h"

namespace wnet::milp::simplex {

DualSimplex::DualSimplex(const StandardLp& lp, LpOptions opts) : lp_(&lp), opts_(opts) {}

void DualSimplex::reset_costs() {
  cost_ = lp_->c();
  perturbed_ = false;
  if (!opts_.perturb) return;
  // Deterministic jitter, large against dual_tol but invisible in the
  // objective (the exact costs are restored before termination).
  std::mt19937 rng(0x5eedu);
  std::uniform_real_distribution<double> u(0.5, 1.5);
  for (double& c : cost_) {
    const double eps = 1e-6 * (1.0 + std::abs(c)) * u(rng);
    c += (rng() & 1) != 0u ? eps : -eps;
  }
  perturbed_ = true;
}

double DualSimplex::violation(int j, double v) const {
  const double lb = lp_->lb()[static_cast<size_t>(j)];
  const double ub = lp_->ub()[static_cast<size_t>(j)];
  if (v > ub + opts_.feas_tol) return v - ub;
  if (v < lb - opts_.feas_tol) return v - lb;
  return 0.0;
}

void DualSimplex::start_from_slack_basis() {
  const int m = lp_->num_rows();
  const int n = lp_->num_cols();
  const int n_struct = n - m;
  basis_.basic.resize(static_cast<size_t>(m));
  basis_.status.assign(static_cast<size_t>(n), ColStatus::kAtLower);
  for (int i = 0; i < m; ++i) {
    basis_.basic[static_cast<size_t>(i)] = n_struct + i;
    basis_.status[static_cast<size_t>(n_struct + i)] = ColStatus::kBasic;
  }
  // Nonbasic structurals at the dual-feasible bound for their cost sign;
  // cost-neutral columns rest at whichever bound is finite.
  for (int j = 0; j < n_struct; ++j) {
    const double c = cost_[static_cast<size_t>(j)];
    if (c < 0) {
      basis_.status[static_cast<size_t>(j)] = ColStatus::kAtUpper;
    } else if (c > 0 || std::isfinite(lp_->lb()[static_cast<size_t>(j)])) {
      basis_.status[static_cast<size_t>(j)] = ColStatus::kAtLower;
    } else {
      basis_.status[static_cast<size_t>(j)] = ColStatus::kAtUpper;
    }
  }
  install_basis(basis_);
}

void DualSimplex::install_basis(const Basis& basis) {
  const int m = lp_->num_rows();
  const int n = lp_->num_cols();
  if (static_cast<int>(basis.basic.size()) != m || static_cast<int>(basis.status.size()) != n) {
    throw std::invalid_argument("DualSimplex: basis dimension mismatch");
  }
  basis_ = basis;
  in_basis_.assign(static_cast<size_t>(n), 0);
  for (int col : basis_.basic) in_basis_[static_cast<size_t>(col)] = 1;
  values_.assign(static_cast<size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    double v = 0.0;
    switch (basis_.status[static_cast<size_t>(j)]) {
      case ColStatus::kAtLower: v = lp_->lb()[static_cast<size_t>(j)]; break;
      case ColStatus::kAtUpper: v = lp_->ub()[static_cast<size_t>(j)]; break;
      case ColStatus::kBasic: continue;
    }
    if (!std::isfinite(v)) {
      // A warm basis can point a nonbasic column at a bound that became
      // infinite; rest it at the finite side (or zero) instead.
      const double lb = lp_->lb()[static_cast<size_t>(j)];
      const double ub = lp_->ub()[static_cast<size_t>(j)];
      if (std::isfinite(lb)) {
        basis_.status[static_cast<size_t>(j)] = ColStatus::kAtLower;
        v = lb;
      } else if (std::isfinite(ub)) {
        basis_.status[static_cast<size_t>(j)] = ColStatus::kAtUpper;
        v = ub;
      } else {
        v = 0.0;
      }
    }
    values_[static_cast<size_t>(j)] = v;
  }
}

void DualSimplex::repair_nonbasic_statuses() {
  const int n = lp_->num_cols();
  for (int j = 0; j < n; ++j) {
    if (basis_.status[static_cast<size_t>(j)] == ColStatus::kBasic) continue;
    const double d = dj_[static_cast<size_t>(j)];
    if (basis_.status[static_cast<size_t>(j)] == ColStatus::kAtLower && d < -opts_.dual_tol &&
        std::isfinite(lp_->ub()[static_cast<size_t>(j)])) {
      basis_.status[static_cast<size_t>(j)] = ColStatus::kAtUpper;
      values_[static_cast<size_t>(j)] = lp_->ub()[static_cast<size_t>(j)];
    } else if (basis_.status[static_cast<size_t>(j)] == ColStatus::kAtUpper &&
               d > opts_.dual_tol && std::isfinite(lp_->lb()[static_cast<size_t>(j)])) {
      basis_.status[static_cast<size_t>(j)] = ColStatus::kAtLower;
      values_[static_cast<size_t>(j)] = lp_->lb()[static_cast<size_t>(j)];
    }
  }
}

bool DualSimplex::refactorize() {
  lu_valid_ = lu_.factorize(lp_->a(), basis_.basic);
  return lu_valid_;
}

void DualSimplex::recompute_basics() {
  const int m = lp_->num_rows();
  const int n = lp_->num_cols();
  std::vector<double> r = lp_->b();
  for (int j = 0; j < n; ++j) {
    if (in_basis_[static_cast<size_t>(j)]) continue;
    const double v = values_[static_cast<size_t>(j)];
    if (v != 0.0) lp_->a().axpy_column(j, -v, r);
  }
  lu_.ftran(r);  // r now holds x_B by basis position
  for (int pos = 0; pos < m; ++pos) {
    values_[static_cast<size_t>(basis_.basic[static_cast<size_t>(pos)])] =
        r[static_cast<size_t>(pos)];
  }
}

void DualSimplex::compute_duals() {
  const int m = lp_->num_rows();
  const int n = lp_->num_cols();
  duals_.assign(static_cast<size_t>(m), 0.0);
  for (int pos = 0; pos < m; ++pos) {
    duals_[static_cast<size_t>(pos)] =
        cost_[static_cast<size_t>(basis_.basic[static_cast<size_t>(pos)])];
  }
  lu_.btran(duals_);  // y by row
  dj_.assign(static_cast<size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    if (in_basis_[static_cast<size_t>(j)]) continue;
    dj_[static_cast<size_t>(j)] = cost_[static_cast<size_t>(j)] - lp_->a().dot_column(j, duals_);
  }
}

LpResult DualSimplex::solve() {
  info_ = {};
  reset_costs();
  start_from_slack_basis();
  if (!refactorize()) {
    // The slack basis is the identity; failure here is impossible unless
    // the instance is malformed.
    LpResult res;
    res.status = LpStatus::kNumericalTrouble;
    return res;
  }
  recompute_basics();
  compute_duals();
  return run();
}

LpResult DualSimplex::solve_from(const Basis& basis) {
  reset_costs();
  // The factorization depends only on the basic column sequence; reuse it
  // when the caller's basis matches (the common branch-and-bound case).
  const bool same_basis = lu_valid_ && basis.basic == basis_.basic;
  install_basis(basis);
  if (!same_basis && !refactorize()) {
    // Clean cold fallback: the inherited basis is numerically unusable.
    LpResult res = solve();
    info_.refactor_fallback = true;
    return res;
  }
  info_ = {/*warm=*/true, /*reused_lu=*/same_basis, /*refactor_fallback=*/false};
  recompute_basics();
  compute_duals();
  repair_nonbasic_statuses();
  recompute_basics();  // bound flips moved nonbasic values
  return run();
}

LpResult DualSimplex::resolve() {
  if (!lu_valid_ || basis_.basic.empty()) return solve();
  info_ = {/*warm=*/true, /*reused_lu=*/true, /*refactor_fallback=*/false};
  reset_costs();
  // Bounds changed under us: re-seat nonbasic columns on their (possibly
  // moved) bounds and repair values/duals; the LU stays valid.
  for (int j = 0; j < lp_->num_cols(); ++j) {
    switch (basis_.status[static_cast<size_t>(j)]) {
      case ColStatus::kAtLower: values_[static_cast<size_t>(j)] = lp_->lb()[static_cast<size_t>(j)]; break;
      case ColStatus::kAtUpper: values_[static_cast<size_t>(j)] = lp_->ub()[static_cast<size_t>(j)]; break;
      case ColStatus::kBasic: break;
    }
  }
  recompute_basics();
  compute_duals();
  repair_nonbasic_statuses();
  recompute_basics();
  return run();
}

LpResult DualSimplex::run() {
  const int m = lp_->num_rows();
  const int n = lp_->num_cols();

  if (m == 0) {  // pure box problem: the start values are already optimal
    return finish(LpStatus::kOptimal, 0);
  }

  std::vector<double> rho(static_cast<size_t>(m));
  std::vector<double> w(static_cast<size_t>(m));
  util::Stopwatch clock;

  int stall = 0;
  double last_inf_sum = kInf;
  bool bland = false;
  banned_.clear();
  banned_rows_.clear();

  for (int iter = 0; iter < opts_.max_iters; ++iter) {
    if ((iter & 63) == 63) {
      if (clock.seconds() > opts_.time_limit_s) return finish(LpStatus::kTimeLimit, iter);
      if (opts_.cancel.cancelled()) return finish(LpStatus::kCancelled, iter);
    }
    // --- Leaving variable: most violated basic (or lowest index in Bland
    // mode to break degenerate cycles).
    int r = -1;
    double best_viol = 0.0;
    double inf_sum = 0.0;
    for (int pos = 0; pos < m; ++pos) {
      const int col = basis_.basic[static_cast<size_t>(pos)];
      const double v = violation(col, values_[static_cast<size_t>(col)]);
      if (v == 0.0) continue;
      if (!banned_rows_.empty() &&
          std::find(banned_rows_.begin(), banned_rows_.end(), pos) != banned_rows_.end()) {
        continue;
      }
      inf_sum += std::abs(v);
      if (bland) {
        if (r == -1 || col < basis_.basic[static_cast<size_t>(r)]) {
          r = pos;
          best_viol = v;
        }
      } else if (std::abs(v) > std::abs(best_viol)) {
        r = pos;
        best_viol = v;
      }
    }
    if (r == -1) {
      if (!perturbed_) return finish(LpStatus::kOptimal, iter);
      // Primal feasible under jittered costs: restore the exact costs and
      // re-optimize (usually a handful of clean-up pivots).
      cost_ = lp_->c();
      perturbed_ = false;
      compute_duals();
      repair_nonbasic_statuses();
      recompute_basics();
      continue;
    }

    if (inf_sum >= last_inf_sum - 1e-12) {
      if (++stall > 200) bland = true;
    } else {
      stall = 0;
      bland = false;
    }
    last_inf_sum = inf_sum;

    const int leaving_col = basis_.basic[static_cast<size_t>(r)];
    const double sigma = best_viol > 0 ? 1.0 : -1.0;

    // --- Row r of B^{-1}: rho = B^{-T} e_r.
    std::fill(rho.begin(), rho.end(), 0.0);
    rho[static_cast<size_t>(r)] = 1.0;
    lu_.btran(rho);

    // --- Dual ratio test over nonbasic columns. The alphas double as the
    // pivot row needed for the incremental reduced-cost update below.
    cands_.clear();
    alphas_.assign(static_cast<size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      if (in_basis_[static_cast<size_t>(j)]) continue;
      if (lp_->lb()[static_cast<size_t>(j)] == lp_->ub()[static_cast<size_t>(j)]) {
        continue;  // fixed, can never move
      }
      const double alpha = lp_->a().dot_column(j, rho);
      alphas_[static_cast<size_t>(j)] = alpha;
      if (!banned_.empty() &&
          std::find(banned_.begin(), banned_.end(), j) != banned_.end()) {
        continue;
      }
      const double sa = sigma * alpha;
      const ColStatus st = basis_.status[static_cast<size_t>(j)];
      if (st == ColStatus::kAtLower && sa > opts_.pivot_tol) {
        cands_.push_back({j, alpha, std::max(0.0, dj_[static_cast<size_t>(j)]) / sa});
      } else if (st == ColStatus::kAtUpper && sa < -opts_.pivot_tol) {
        cands_.push_back({j, alpha, std::max(0.0, -dj_[static_cast<size_t>(j)]) / (-sa)});
      }
    }
    const auto& cands = cands_;
    if (cands.empty()) {
      if (!banned_.empty()) {
        // Every candidate for this row was banned for a knife-edge pivot.
        // With an exact factorization the FTRAN values are trustworthy: the
        // row's true pivot row is numerically zero against every eligible
        // column, so its (tiny) violation cannot be repaired by any pivot.
        // Accept the violation and skip the row from now on — refactorizing
        // would re-derive the same dead end forever (observed as the
        // dominant solver cost on degenerate instances). A large violation
        // means something is genuinely wrong: report numerical trouble so
        // the caller's escalation path takes over.
        banned_.clear();
        if (lu_.num_updates() == 0) {
          if (std::abs(best_viol) > 16.0 * opts_.feas_tol) {
            return finish(LpStatus::kNumericalTrouble, iter);
          }
          banned_rows_.push_back(r);
          continue;
        }
        // Stale LU updates: the bans may have been spurious; retry from an
        // exact factorization.
        if (!refactorize()) return finish(LpStatus::kNumericalTrouble, iter);
        recompute_basics();
        compute_duals();
        continue;
      }
      return finish(LpStatus::kPrimalInfeasible, iter);
    }

    int q = -1;
    double best_alpha = 0.0;
    if (bland) {
      // Bland-style anti-cycling: smallest column index among those within
      // tolerance of the minimal ratio.
      double rmin = kInf;
      for (const auto& c : cands) rmin = std::min(rmin, c.ratio);
      for (const auto& c : cands) {
        if (c.ratio <= rmin + opts_.dual_tol && (q == -1 || c.col < q)) {
          q = c.col;
          best_alpha = c.alpha;
        }
      }
    } else {
      double best_ratio = kInf;
      for (const auto& c : cands) {
        if (c.ratio < best_ratio - 1e-12 ||
            (c.ratio < best_ratio + 1e-12 && std::abs(c.alpha) > std::abs(best_alpha))) {
          q = c.col;
          best_alpha = c.alpha;
          best_ratio = c.ratio;
        }
      }
    }

    // --- FTRAN the entering column. Slack and singleton structural columns
    // (a large share of the entering columns on these models) take the
    // hyper-sparse single-nonzero path.
    const auto& qcol = lp_->a().column(q);
    w.assign(static_cast<size_t>(m), 0.0);
    if (qcol.size() == 1) {
      lu_.ftran_unit(w, qcol[0].row, qcol[0].value);
    } else {
      for (const Entry& e : qcol) w[static_cast<size_t>(e.row)] = e.value;
      lu_.ftran(w);
    }
    const double alpha_rq = w[static_cast<size_t>(r)];
    if (std::abs(alpha_rq) < opts_.pivot_tol) {
      if (lu_.num_updates() == 0) {
        // The factorization is exact, so the FTRAN value is trustworthy and
        // this candidate's pivot is genuinely tiny — the BTRAN-priced alpha
        // was the knife-edge one. Refactorizing again would reproduce the
        // same choice forever (the dominant solver cost on degenerate
        // models); exclude the column from this ratio test instead.
        banned_.push_back(q);
        continue;
      }
      // Stale LU updates: refactorize and retry the iteration.
      if (!refactorize()) return finish(LpStatus::kNumericalTrouble, iter);
      recompute_basics();
      compute_duals();
      continue;
    }

    // --- Pivot: leaving goes to its violated bound, entering becomes basic.
    const double delta = best_viol;           // signed distance past the bound
    const double step = delta / alpha_rq;     // change of the entering value
    // values_[basic[pos]] -= w[pos] * step as a kernel scatter (basic
    // positions are distinct by construction).
    static_assert(sizeof(int) == sizeof(int32_t));
    util::simd::kernels().scatter_axpy(
        reinterpret_cast<const int32_t*>(basis_.basic.data()), w.data(), m, -step,
        values_.data());
    values_[static_cast<size_t>(q)] += step;
    values_[static_cast<size_t>(leaving_col)] =
        sigma > 0 ? lp_->ub()[static_cast<size_t>(leaving_col)]
                  : lp_->lb()[static_cast<size_t>(leaving_col)];

    basis_.status[static_cast<size_t>(leaving_col)] =
        sigma > 0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
    basis_.status[static_cast<size_t>(q)] = ColStatus::kBasic;
    basis_.basic[static_cast<size_t>(r)] = q;
    in_basis_[static_cast<size_t>(leaving_col)] = 0;
    in_basis_[static_cast<size_t>(q)] = 1;
    banned_.clear();
    banned_rows_.clear();

    if (lu_.num_updates() >= opts_.refactor_interval || !lu_.update(r, w)) {
      if (!refactorize()) return finish(LpStatus::kNumericalTrouble, iter);
      recompute_basics();
      compute_duals();  // fresh duals at every refactorization
    } else {
      // Incremental reduced-cost update: one dual pivot of size
      // theta = d_q / alpha_q; every nonbasic j moves by -theta * alpha_j
      // and the leaving column picks up -theta. Saves a BTRAN plus a full
      // pricing pass per iteration; drift is repaired at refactorization.
      const double theta = dj_[static_cast<size_t>(q)] / alpha_rq;
      if (theta != 0.0) {
        // Branchless dense kernel: dj += (-theta) * alphas. The zero-alpha
        // guard the scalar loop used to carry is dropped — adding an exact
        // ±0 product leaves dj unchanged through every comparison
        // downstream, and the straight-line form vectorizes.
        util::simd::kernels().dense_axpy(dj_.data(), alphas_.data(), -theta, n);
      }
      dj_[static_cast<size_t>(q)] = 0.0;
      dj_[static_cast<size_t>(leaving_col)] = -theta;
    }
  }
  return finish(LpStatus::kIterLimit, opts_.max_iters);
}

LpResult DualSimplex::finish(LpStatus status, int iters) {
  LpResult res;
  res.status = status;
  res.iterations = iters;
  res.x = values_;
  res.reduced_costs = dj_;
  res.objective = lp_->objective_value(values_);
  if (status == LpStatus::kOptimal) {
    // A solution resting on a synthetic bound means the true problem is
    // unbounded in that direction (or the bound is simply not binding —
    // only flag when the synthetic bound is active).
    for (int j = 0; j < lp_->num_cols(); ++j) {
      const double v = values_[static_cast<size_t>(j)];
      if ((lp_->lb_synthetic(j) && v <= -kBigBound + 1.0) ||
          (lp_->ub_synthetic(j) && v >= kBigBound - 1.0)) {
        res.status = LpStatus::kUnbounded;
        break;
      }
    }
  }
  return res;
}

}  // namespace wnet::milp::simplex
