#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/simplex/sparse.h"

namespace wnet::milp::simplex {

/// Bound magnitude substituted for an infinite bound ONLY when the
/// objective pushes the variable toward it (the genuinely unbounded
/// direction): the dual simplex needs a finite dual-feasible resting spot
/// there. A solution resting on a synthetic bound is reported as
/// unbounded. All other infinities are kept exact, which keeps basic
/// values small and the basis well conditioned.
inline constexpr double kBigBound = 1e7;

/// Standard-form LP:  min c'x  s.t.  A x = b,  lb <= x <= ub,
/// with columns = structural variables of the Model followed by one slack
/// per row (coefficient +1; range encodes the row sense). Integrality is
/// ignored here — the MIP layer owns it.
class StandardLp {
 public:
  /// Builds the standard form from a Model. Remembered structural count
  /// lets callers slice solutions back to Model variables.
  explicit StandardLp(const Model& model);

  [[nodiscard]] int num_rows() const { return static_cast<int>(b_.size()); }
  [[nodiscard]] int num_cols() const { return a_.num_cols(); }
  [[nodiscard]] int num_structural() const { return n_struct_; }

  [[nodiscard]] const SparseMatrix& a() const { return a_; }
  [[nodiscard]] const std::vector<double>& b() const { return b_; }
  [[nodiscard]] const std::vector<double>& c() const { return c_; }
  [[nodiscard]] const std::vector<double>& lb() const { return lb_; }
  [[nodiscard]] const std::vector<double>& ub() const { return ub_; }

  /// True if column j's stored bound was clamped from an infinity.
  [[nodiscard]] bool lb_synthetic(int j) const { return lb_synth_[static_cast<size_t>(j)] != 0; }
  [[nodiscard]] bool ub_synthetic(int j) const { return ub_synth_[static_cast<size_t>(j)] != 0; }

  /// Mutates a structural variable's bounds (branch-and-bound). Infinite
  /// values are clamped like at construction.
  void set_bounds(int col, double lb, double ub);

  /// Appends one row (a lazily activated cut) over structural columns, plus
  /// its slack column at the end — so the slack of row i stays column
  /// `num_structural() + i` and every existing column index is untouched.
  /// `terms` must reference structural columns only, with unique ascending
  /// ids. Returns the new row index. Callers must drop any simplex state
  /// built against the old dimensions (a basis is extendable: the new slack
  /// is basic in its row, which keeps the basis nonsingular and — slack
  /// cost being zero — dual feasible).
  int add_row(const std::vector<std::pair<int, double>>& terms, Sense sense, double rhs);

  /// Objective value of a full column assignment (constant included).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  [[nodiscard]] double objective_constant() const { return obj_constant_; }

 private:
  void clamp_cost_side_infinities();

  SparseMatrix a_;
  std::vector<double> b_;
  std::vector<double> c_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<char> lb_synth_;
  std::vector<char> ub_synth_;
  int n_struct_ = 0;
  double obj_constant_ = 0.0;
};

}  // namespace wnet::milp::simplex
