#pragma once

#include <cstdint>
#include <vector>

#include "milp/simplex/lu.h"
#include "milp/simplex/standard_lp.h"
#include "util/exec/exec.h"

namespace wnet::milp::simplex {

enum class LpStatus {
  kOptimal,
  kPrimalInfeasible,
  kUnbounded,        ///< optimum rests on a synthetic (clamped-infinite) bound
  kIterLimit,        ///< pivot budget (max_iters) exhausted
  kTimeLimit,        ///< wall-clock budget (time_limit_s) expired
  kCancelled,        ///< the cancellation token tripped mid-solve
  kNumericalTrouble,
};

struct LpOptions {
  double feas_tol = 1e-7;    ///< primal bound violation tolerance
  double dual_tol = 1e-7;    ///< reduced-cost sign tolerance
  double pivot_tol = 1e-8;   ///< minimum |pivot| admitted
  int max_iters = 200000;
  int refactor_interval = 100;
  /// Wall-clock budget for one solve; expiry reports kTimeLimit (distinct
  /// from kIterLimit, so callers never mistake a timeout for iteration
  /// exhaustion — they map to different TerminationReasons and only the
  /// latter warrants a numerical-retry escalation).
  double time_limit_s = 1e30;
  /// Cooperative cancellation: polled on the same cadence as the time
  /// limit; a tripped token reports kCancelled. Default: never cancels.
  util::exec::CancellationToken cancel;
  /// Anti-degeneracy cost perturbation: solve with slightly jittered costs
  /// (breaking the reduced-cost ties that cause stalling), then restore the
  /// exact costs and re-optimize — typically a handful of clean-up pivots.
  bool perturb = true;
};

enum class ColStatus : uint8_t { kBasic, kAtLower, kAtUpper };

/// A simplex basis: one basic column per row plus nonbasic bound statuses.
/// The MIP search passes these between parent and child nodes.
struct Basis {
  std::vector<int> basic;          ///< size m, column index per row position
  std::vector<ColStatus> status;   ///< size num_cols
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalTrouble;
  double objective = 0.0;          ///< includes the model's objective constant
  std::vector<double> x;           ///< full column space (structurals first)
  std::vector<double> reduced_costs;  ///< per column (basic columns: 0)
  int iterations = 0;
};

/// How the most recent solve was started — the MIP layer's warm-start
/// telemetry reads this after each node LP.
struct SolveInfo {
  bool warm = false;               ///< started from a caller-supplied basis
  bool reused_lu = false;          ///< the cached factorization matched and was kept
  bool refactor_fallback = false;  ///< warm basis refused to factorize; fell back cold
};

/// Bounded-variable dual simplex.
///
/// Because every column is bounded (infinities are clamped by StandardLp),
/// the all-slack basis with nonbasic statuses matched to cost signs is
/// always dual feasible, so one dual simplex run serves as both phase 1 and
/// phase 2. It is also the natural engine for branch-and-bound: after a
/// bound change the old basis stays dual feasible and only primal
/// feasibility needs repair.
class DualSimplex {
 public:
  explicit DualSimplex(const StandardLp& lp, LpOptions opts = {});

  /// Solves from the fresh all-slack basis.
  LpResult solve();

  /// Solves warm-started from `basis` (e.g. the parent node's). Falls back
  /// to a fresh solve on numerical trouble.
  LpResult solve_from(const Basis& basis);

  /// Basis after the last solve (valid when status is kOptimal/kUnbounded).
  [[nodiscard]] const Basis& basis() const { return basis_; }

  /// Adjusts the per-solve wall-clock budget (branch-and-bound sets this to
  /// the remaining global budget before each node).
  void set_time_limit(double seconds) { opts_.time_limit_s = seconds; }

  /// Restores the per-solve pivot budget after a numerical-retry escalation
  /// inflated it, without discarding the cached factorization the way a
  /// from-scratch engine rebuild would.
  void set_iteration_limit(int max_iters) { opts_.max_iters = max_iters; }

  /// Start-mode telemetry for the most recent solve()/solve_from()/resolve().
  [[nodiscard]] const SolveInfo& last_solve_info() const { return info_; }

  /// Solves again after external bound changes, reusing the current basis
  /// AND its factorization (cheapest path for branch-and-bound plunging).
  LpResult resolve();

 private:
  void start_from_slack_basis();
  void install_basis(const Basis& basis);
  /// Repairs dual feasibility of nonbasic statuses by bound flips.
  void repair_nonbasic_statuses();
  bool refactorize();
  void recompute_basics();
  void compute_duals();
  LpResult run();
  LpResult finish(LpStatus status, int iters);

  /// Primal bound violation of column j at value v (positive above ub,
  /// negative below lb, 0 if inside).
  [[nodiscard]] double violation(int j, double v) const;

  /// Installs the (possibly perturbed) working costs.
  void reset_costs();

  const StandardLp* lp_;
  LpOptions opts_;
  BasisLu lu_;
  bool lu_valid_ = false;
  Basis basis_;
  std::vector<double> values_;  ///< current value of every column
  std::vector<double> duals_;   ///< y, per row
  std::vector<double> dj_;      ///< reduced costs, per column
  std::vector<char> in_basis_;  ///< fast basic-membership flag
  std::vector<double> cost_;    ///< working costs (perturbed while active)
  bool perturbed_ = false;      ///< true while cost_ != exact costs
  SolveInfo info_;              ///< start mode of the most recent solve

  /// Per-iteration scratch (kept as members to avoid reallocation).
  struct RatioCandidate {
    int col;
    double alpha;
    double ratio;
  };
  std::vector<RatioCandidate> cands_;
  std::vector<double> alphas_;  ///< pivot row alpha_j per column
  std::vector<int> banned_;      ///< columns excluded from the current ratio test
  std::vector<int> banned_rows_;  ///< rows skipped by leaving selection (knife-edge pivots)
};

}  // namespace wnet::milp::simplex
