#pragma once

#include <vector>

#include "milp/simplex/sparse.h"

namespace wnet::milp::simplex {

/// Sparse LU factorization of a simplex basis with partial pivoting
/// (left-looking Gilbert-Peierls style) plus product-form-of-the-inverse
/// eta updates between refactorizations.
///
/// Spaces: FTRAN input is indexed by constraint row, output by *basis
/// position*; BTRAN input by basis position, output by constraint row.
/// Eta updates live purely in basis-position space.
class BasisLu {
 public:
  /// Factorizes B = A[:, basis_cols]. Columns are pre-ordered by increasing
  /// nonzero count to curb fill-in. Returns false if the basis is singular
  /// (pivot below `singular_tol`).
  bool factorize(const SparseMatrix& a, const std::vector<int>& basis_cols,
                 double singular_tol = 1e-10);

  /// Solves B x = b. `x` is b on input (indexed by row) and the solution on
  /// output (indexed by basis position).
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = c. `y` is c on input (indexed by basis position) and
  /// the solution on output (indexed by row).
  void btran(std::vector<double>& y) const;

  /// Records the replacement of basis position `pos` by a column whose
  /// FTRAN representation is `w` (dense, basis-position space). Returns
  /// false if |w[pos]| is too small to pivot on — caller must refactorize.
  bool update(int pos, const std::vector<double>& w, double pivot_tol = 1e-9);

  [[nodiscard]] int num_updates() const { return static_cast<int>(etas_.size()); }
  [[nodiscard]] int dim() const { return m_; }

  /// Total nonzeros in L + U + etas (refactorization trigger heuristic).
  [[nodiscard]] size_t fill() const;

 private:
  struct Eta {
    int pos;                   ///< replaced basis position
    double pivot;              ///< w[pos]
    std::vector<Entry> other;  ///< w[i] for i != pos, nonzero
  };

  int m_ = 0;
  // L: column t holds entries (original row i, value) with pinv_[i] > t;
  // implicit unit diagonal at row p_[t].
  std::vector<std::vector<Entry>> l_cols_;
  // U: column k holds strictly-upper entries (step t < k, value); diagonal
  // stored separately.
  std::vector<std::vector<Entry>> u_cols_;
  std::vector<double> u_diag_;
  std::vector<int> p_;       ///< p_[step] = original row
  std::vector<int> pinv_;    ///< pinv_[original row] = step
  std::vector<int> q_;       ///< q_[step] = basis position of factored column
  std::vector<Eta> etas_;

  mutable std::vector<double> work_;   ///< dense scratch, size m
  mutable std::vector<double> work2_;  ///< dense scratch, size m
};

}  // namespace wnet::milp::simplex
