#pragma once

#include <cstdint>
#include <vector>

#include "milp/simplex/sparse.h"

namespace wnet::milp::simplex {

/// Sparse LU factorization of a simplex basis with partial pivoting
/// (left-looking Gilbert-Peierls style) plus product-form-of-the-inverse
/// eta updates between refactorizations.
///
/// Spaces: FTRAN input is indexed by constraint row, output by *basis
/// position*; BTRAN input by basis position, output by constraint row.
/// Eta updates live purely in basis-position space.
///
/// Storage is structure-of-arrays: L, U and the eta file each keep one flat
/// int32 index pool and one flat double value pool with per-column start
/// offsets (columns are built strictly in factorization order, so no
/// capacity slack is needed). The split arrays feed the util/simd
/// gather/scatter kernels; all solves are bit-identical across dispatch
/// levels (see util/simd/simd.h for the lane-order contract).
class BasisLu {
 public:
  /// Factorizes B = A[:, basis_cols]. Columns are pre-ordered by increasing
  /// nonzero count to curb fill-in. Returns false if the basis is singular
  /// (pivot below `singular_tol`).
  bool factorize(const SparseMatrix& a, const std::vector<int>& basis_cols,
                 double singular_tol = 1e-10);

  /// Solves B x = b. `x` is b on input (indexed by row) and the solution on
  /// output (indexed by basis position).
  void ftran(std::vector<double>& x) const;

  /// Hyper-sparse FTRAN for a right-hand side with a single nonzero
  /// (`value` at original row `row`, i.e. a slack or singleton structural
  /// column). `x` must be all-zero on entry and receives the solution in
  /// basis-position space. The forward pass walks only the steps actually
  /// reached from the seed row (topological order via a step heap) and the
  /// backward pass starts at the deepest touched step, so the cost is
  /// proportional to the solution's fill instead of O(m). Arithmetic is
  /// bitwise-identical to ftran() on the equivalent dense input: every
  /// skipped iteration would have operated on an exact zero.
  void ftran_unit(std::vector<double>& x, int row, double value) const;

  /// Solves B^T y = c. `y` is c on input (indexed by basis position) and
  /// the solution on output (indexed by row).
  void btran(std::vector<double>& y) const;

  /// Records the replacement of basis position `pos` by a column whose
  /// FTRAN representation is `w` (dense, basis-position space). Returns
  /// false if |w[pos]| is too small to pivot on — caller must refactorize.
  bool update(int pos, const std::vector<double>& w, double pivot_tol = 1e-9);

  [[nodiscard]] int num_updates() const { return static_cast<int>(etas_.size()); }
  [[nodiscard]] int dim() const { return m_; }

  /// Total nonzeros in L + U + etas (refactorization trigger heuristic).
  [[nodiscard]] size_t fill() const {
    return l_rows_.size() + u_rows_.size() + eta_rows_.size() + etas_.size();
  }

 private:
  struct Eta {
    int pos;        ///< replaced basis position
    double pivot;   ///< w[pos]
    int64_t start;  ///< offset into eta_rows_/eta_vals_
    int len;        ///< number of off-pivot entries
  };

  void debug_check_solve(const std::vector<double>& v) const;

  int m_ = 0;
  // L: column t holds entries (original row i, value) with pinv_[i] > t;
  // implicit unit diagonal at row p_[t]. l_steps_ mirrors l_rows_ mapped
  // through pinv_ (filled once factorization completes) so the BTRAN L^T
  // pass can gather directly in step space.
  std::vector<int32_t> l_rows_;
  std::vector<double> l_vals_;
  std::vector<int32_t> l_steps_;
  std::vector<int64_t> l_start_;  ///< size m_ + 1
  // U: column k holds strictly-upper entries (step t < k, value); diagonal
  // stored separately.
  std::vector<int32_t> u_rows_;
  std::vector<double> u_vals_;
  std::vector<int64_t> u_start_;  ///< size m_ + 1
  std::vector<double> u_diag_;
  std::vector<int> p_;     ///< p_[step] = original row
  std::vector<int> pinv_;  ///< pinv_[original row] = step
  std::vector<int> q_;     ///< q_[step] = basis position of factored column
  std::vector<Eta> etas_;
  std::vector<int32_t> eta_rows_;  ///< basis-position space
  std::vector<double> eta_vals_;

  mutable std::vector<double> work_;   ///< dense scratch, size m
  mutable std::vector<double> work2_;  ///< dense scratch, size m
  mutable std::vector<int> heap_;      ///< pending-step min-heap (ftran_unit)
  mutable std::vector<int> touched_;   ///< steps reached by the forward pass
  mutable std::vector<char> queued_;   ///< step already in heap_, size m
};

}  // namespace wnet::milp::simplex
