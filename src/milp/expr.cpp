#include "milp/expr.h"

#include <cmath>
#include <stdexcept>

namespace wnet::milp {

LinExpr& LinExpr::operator+=(const LinExpr& o) {
  constant_ += o.constant_;
  for (const auto& [v, c] : o.terms_) add_term(v, c);
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& o) {
  constant_ -= o.constant_;
  for (const auto& [v, c] : o.terms_) add_term(v, -c);
  return *this;
}

LinExpr& LinExpr::operator*=(double s) {
  constant_ *= s;
  for (auto& [v, c] : terms_) c *= s;
  return *this;
}

void LinExpr::add_term(Var v, double coef) {
  if (!v.valid()) throw std::invalid_argument("LinExpr::add_term: invalid variable");
  auto [it, inserted] = terms_.try_emplace(v, coef);
  if (!inserted) {
    it->second += coef;
    if (it->second == 0.0) terms_.erase(it);
  } else if (coef == 0.0) {
    terms_.erase(it);
  }
}

double LinExpr::evaluate(const std::vector<double>& values) const {
  double v = constant_;
  for (const auto& [var, c] : terms_) {
    v += c * values.at(static_cast<size_t>(var.id));
  }
  return v;
}

}  // namespace wnet::milp
