#pragma once

#include <functional>
#include <string>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/simplex/dual_simplex.h"
#include "util/exec/exec.h"

namespace wnet::milp {

enum class SolveStatus {
  kOptimal,    ///< proven optimal within the gap
  kFeasible,   ///< incumbent found but search stopped early (time/node limit)
  kInfeasible,
  kUnbounded,
  kNoSolution, ///< search stopped early with no incumbent
};

[[nodiscard]] const char* to_string(SolveStatus s);

struct SolveOptions {
  double time_limit_s = 300.0;
  long node_limit = 1000000;
  /// Request-level execution control: the effective deadline is the tighter
  /// of `exec.deadline` and `time_limit_s` from solve() entry, the token is
  /// polled at every node (and inside the dual simplex), and
  /// `exec.budget->charge_bb_nodes()` meters the node loop. Defaults never
  /// stop anything. On any early stop the solver still returns the best
  /// incumbent, the global dual bound and the gap (anytime contract), with
  /// SolveStats::termination saying why it stopped.
  util::exec::ExecControl exec;
  double rel_gap = 1e-6;     ///< relative optimality gap for termination
  double int_tol = 1e-6;     ///< integrality tolerance
  bool root_dive = true;     ///< run the diving heuristic after the root LP
  bool verbose = false;
  /// Optional MIP start: values for the model's variables. Accepted as the
  /// initial incumbent if it passes the model's own feasibility check.
  std::vector<double> mip_start;
  /// Optional primal cutoff: prune any subtree whose LP bound cannot beat
  /// this objective, even before an incumbent exists. Incremental rungs of
  /// the K* ladder install the previous rung's optimum here so each solve
  /// starts with a proven primal bound. Tie semantics are inclusive: an
  /// integer point whose objective *equals* the cutoff (within
  /// tol::kObjImprove) is still accepted as an incumbent before its region
  /// is pruned, so a caller racing heuristics (portfolio) that installs its
  /// best-known objective as the cutoff gets kFeasible/kOptimal back when
  /// the solver re-discovers a tie-equal optimum, never a spurious
  /// kNoSolution. Only when the cutoff exhausts the tree with no tie-equal
  /// point ever surfacing is the result kNoSolution (not kInfeasible —
  /// feasible-but-not-better regions were pruned unseen).
  double cutoff = kInf;
  simplex::LpOptions lp;

  /// Pseudocost branching: rank fractional variables by the observed
  /// per-unit objective degradation of past up/down branchings instead of
  /// raw fractionality. Directions with fewer than
  /// `pseudocost_reliability` observations blend toward the tree-wide
  /// average (and, before any branching history exists at all, the rule
  /// degenerates to most-fractional), so early branchings behave like the
  /// textbook rule and later ones exploit learned costs.
  bool pseudocost_branching = true;
  int pseudocost_reliability = 4;

  /// Node-level bound propagation: before each node LP, run activity-based
  /// tightening of the integer bounds implied by the node's branching
  /// chain. Nodes proven infeasible by propagation are pruned without any
  /// LP work; tightened bounds shrink the dual simplex's repair distance.
  bool node_propagation = true;
  int node_propagation_rounds = 2;

  /// Warm-start node LPs from the parent's final basis (dual simplex keeps
  /// dual feasibility across bound changes). Off = every node starts from
  /// the all-slack basis; exists mainly for A/B measurement.
  bool warm_start = true;

  /// Record the incumbent timeline (time / node / objective per accepted
  /// incumbent) in SolveStats. Cheap; off only for byte-stable comparisons.
  bool collect_timeline = true;

  /// Numerical-failure handling: when a node LP hits its iteration limit or
  /// numerical trouble, re-solve it from scratch (cold dual simplex, fresh
  /// factorization) with a 10x larger iteration budget per escalation —
  /// up to this many escalations — instead of abandoning the subtree.
  int max_numerical_retries = 3;
  /// Once this many numerical failures have accumulated in one solve, warm
  /// bases are treated as tainted and every node LP starts cold.
  long cold_restart_after_failures = 25;

  /// Cut separation: callbacks invoked on node LP points, a deduplicating
  /// pool, and the lazy-constraint gate on candidate incumbents. Empty
  /// separator list = the feature is fully off. Separated rows enter the
  /// LP through the warm-start path (parent bases are extended with the
  /// new slacks basic) and the loop honors `exec` cancellation/budget.
  CutOptions cuts;

  /// Bound-feedback hook: invoked on the serial spine whenever the proven
  /// global dual bound improves (root LP/separation, then every node-loop
  /// tightening past tol::kObjImprove). The portfolio runner feeds these
  /// into the tabu member as its aspiration level and into the combined
  /// anytime certificate's bound timeline. The callback must be cheap and
  /// must not re-enter the solver; calls are deterministic given the same
  /// model + options (wall time is not passed for exactly that reason).
  std::function<void(double)> on_bound_improved;
};

/// One accepted incumbent, for the convergence timeline.
struct IncumbentEvent {
  double time_s = 0.0;
  long nodes = 0;
  double objective = 0.0;
};

struct SolveStats {
  long nodes = 0;
  long lp_iterations = 0;
  double time_s = 0.0;
  double root_bound = 0.0;
  /// Why the solve returned, and the anytime certificate that goes with it:
  /// the proven global lower bound and the relative optimality gap (kInf
  /// when no incumbent exists). Mirrored from MipResult so every serialized
  /// report carries the certificate.
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;
  double bound = 0.0;
  double gap = 0.0;
  long numerical_failures = 0;
  long rc_fixed = 0;  ///< binaries fixed by root reduced-cost fixing

  // Warm-start accounting (node LPs only; the root is always cold).
  long warm_attempts = 0;    ///< node LPs started from an inherited basis
  long warm_lu_reused = 0;   ///< warm starts that also reused the cached LU
  long warm_fallbacks = 0;   ///< warm starts that fell back cold (refactorization failed)
  long cold_solves = 0;      ///< node LPs deliberately started from scratch

  // Bound propagation.
  long propagation_tightenings = 0;  ///< integer bounds tightened across all nodes
  long propagation_prunes = 0;       ///< nodes pruned infeasible before any LP

  // Branching-rule mix.
  long pseudocost_branches = 0;  ///< branchings where the chosen variable was reliable
  long fractional_branches = 0;  ///< branchings decided by the fractionality fallback

  // Cut separation (all zero when SolveOptions::cuts has no separators).
  long cut_rounds = 0;          ///< separation rounds run (root + node + gate)
  long cuts_proposed = 0;       ///< cuts proposed by the separators
  long cuts_pooled = 0;         ///< distinct cuts accepted by the pool
  long cuts_duplicate = 0;      ///< proposals dropped by tolerance-aware dedup
  long cuts_lp_rows = 0;        ///< pooled cuts activated as LP rows this solve
  long cuts_purged = 0;         ///< pooled cuts aged out without activating
  long lazy_rejections = 0;     ///< integer points rejected by the lazy gate
  long cuts_dim_rejected = 0;   ///< shared-pool cuts fenced off: their column
                                ///< ids exceed this model's var count
  double separation_time_s = 0.0;  ///< wall time inside separators + selection

  long incumbents = 0;  ///< accepted incumbents (improvements only)
  bool mip_start_used = false;  ///< the supplied MIP start passed feasibility
  std::vector<IncumbentEvent> incumbent_timeline;

  /// Active SIMD dispatch level ("scalar", "sse2", "avx2", "neon") recorded
  /// at solve entry. Diagnostic only: results are bit-identical across
  /// levels by the kernel determinism contract (see util/simd/simd.h).
  std::string simd_level;

  /// Fraction of node LPs that reused an inherited basis (0 when no nodes).
  [[nodiscard]] double warm_start_hit_rate() const {
    const long total = warm_attempts + cold_solves;
    return total > 0 ? static_cast<double>(warm_attempts - warm_fallbacks) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// Machine-readable telemetry: every counter above plus the incumbent
  /// timeline, as one JSON object.
  [[nodiscard]] std::string to_json() const;
};

struct MipResult {
  SolveStatus status = SolveStatus::kNoSolution;
  double objective = 0.0;        ///< incumbent objective (valid unless kNoSolution)
  double bound = -kInf;          ///< proven lower bound
  std::vector<double> x;         ///< values for the Model's variables
  SolveStats stats;

  [[nodiscard]] bool has_solution() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

/// Relative optimality gap of an incumbent against a lower bound:
/// (incumbent - bound) / max(1, |incumbent|, |bound|). kInf when there is
/// no incumbent or no finite bound (NaN on either side counts as missing).
/// 0 when incumbent <= bound + tol::kGapSlack — a bound nudged past the
/// incumbent by cut-tightened duals still reads as proven optimal, never a
/// negative gap. The denominator floors at 1 but also honors |bound|, so a
/// proven-optimal minimization with negative cost (incumbent -c, bound
/// one roundoff below) reports ~0, not the wild percentage the old
/// |incumbent|-only floor produced when the incumbent sat near zero.
[[nodiscard]] double relative_gap(double incumbent, double bound);

/// Solves a MILP by LP-based branch-and-bound: dual-simplex warm restarts
/// down the tree, reliability-blended pseudocost branching with plunge
/// ordering, node-level bound propagation, root rounding + diving
/// heuristics. Plays the role CPLEX plays in the paper's toolchain (see
/// DESIGN.md substitutions).
[[nodiscard]] MipResult solve(const Model& model, const SolveOptions& opts = {});

}  // namespace wnet::milp
