#pragma once

#include <string>
#include <vector>

#include "milp/model.h"
#include "milp/simplex/dual_simplex.h"

namespace wnet::milp {

enum class SolveStatus {
  kOptimal,    ///< proven optimal within the gap
  kFeasible,   ///< incumbent found but search stopped early (time/node limit)
  kInfeasible,
  kUnbounded,
  kNoSolution, ///< search stopped early with no incumbent
};

[[nodiscard]] const char* to_string(SolveStatus s);

struct SolveOptions {
  double time_limit_s = 300.0;
  long node_limit = 1000000;
  double rel_gap = 1e-6;     ///< relative optimality gap for termination
  double int_tol = 1e-6;     ///< integrality tolerance
  bool root_dive = true;     ///< run the diving heuristic after the root LP
  bool verbose = false;
  /// Optional MIP start: values for the model's variables. Accepted as the
  /// initial incumbent if it passes the model's own feasibility check.
  std::vector<double> mip_start;
  simplex::LpOptions lp;

  /// Numerical-failure handling: when a node LP hits its iteration limit or
  /// numerical trouble, re-solve it from scratch (cold dual simplex, fresh
  /// factorization) with a 10x larger iteration budget per escalation —
  /// up to this many escalations — instead of abandoning the subtree.
  int max_numerical_retries = 3;
  /// Once this many numerical failures have accumulated in one solve, warm
  /// bases are treated as tainted and every node LP starts cold.
  long cold_restart_after_failures = 25;
};

struct SolveStats {
  long nodes = 0;
  long lp_iterations = 0;
  double time_s = 0.0;
  double root_bound = 0.0;
  long numerical_failures = 0;
  long rc_fixed = 0;  ///< binaries fixed by root reduced-cost fixing
};

struct MipResult {
  SolveStatus status = SolveStatus::kNoSolution;
  double objective = 0.0;        ///< incumbent objective (valid unless kNoSolution)
  double bound = -kInf;          ///< proven lower bound
  std::vector<double> x;         ///< values for the Model's variables
  SolveStats stats;

  [[nodiscard]] bool has_solution() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kFeasible;
  }
};

/// Solves a MILP by LP-based branch-and-bound: dual-simplex warm restarts
/// down the tree, most-fractional branching with plunge ordering, root
/// rounding + diving heuristics. Plays the role CPLEX plays in the paper's
/// toolchain (see DESIGN.md substitutions).
[[nodiscard]] MipResult solve(const Model& model, const SolveOptions& opts = {});

}  // namespace wnet::milp
