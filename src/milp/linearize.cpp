#include "milp/linearize.h"

#include <cmath>
#include <stdexcept>

namespace wnet::milp {

Var product_binary_binary(Model& m, Var x, Var y, const std::string& name) {
  if (m.var(x).type == VarType::kContinuous || m.var(y).type == VarType::kContinuous) {
    throw std::invalid_argument("product_binary_binary: operands must be binary");
  }
  const Var z = m.add_binary(name);
  m.add_le(LinExpr(z) - LinExpr(x), 0.0, name + "_le_x");
  m.add_le(LinExpr(z) - LinExpr(y), 0.0, name + "_le_y");
  m.add_ge(LinExpr(z) - LinExpr(x) - LinExpr(y), -1.0, name + "_ge_sum");
  return z;
}

Var product_binary_continuous(Model& m, Var b, Var c, const std::string& name) {
  const double lo = m.var(c).lb;
  const double hi = m.var(c).ub;
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("product_binary_continuous: continuous var must be bounded");
  }
  const Var w = m.add_continuous(name, std::min(lo, 0.0), std::max(hi, 0.0));
  // w <= hi * b ; w >= lo * b
  m.add_le(LinExpr(w) - hi * LinExpr(b), 0.0, name + "_ub_b");
  m.add_ge(LinExpr(w) - lo * LinExpr(b), 0.0, name + "_lb_b");
  // w <= c - lo (1 - b)  <=>  w - c - lo b <= -lo
  m.add_le(LinExpr(w) - LinExpr(c) - lo * LinExpr(b), -lo, name + "_ub_c");
  // w >= c - hi (1 - b)  <=>  w - c - hi b >= -hi
  m.add_ge(LinExpr(w) - LinExpr(c) - hi * LinExpr(b), -hi, name + "_lb_c");
  return w;
}

double expr_upper_bound(const Model& m, const LinExpr& expr) {
  double ub = expr.constant();
  for (const auto& [v, c] : expr.terms()) {
    const auto& d = m.var(v);
    const double bound = c >= 0 ? d.ub : d.lb;
    if (!std::isfinite(bound)) return kInf;
    ub += c * bound;
  }
  return ub;
}

double expr_lower_bound(const Model& m, const LinExpr& expr) {
  double lb = expr.constant();
  for (const auto& [v, c] : expr.terms()) {
    const auto& d = m.var(v);
    const double bound = c >= 0 ? d.lb : d.ub;
    if (!std::isfinite(bound)) return -kInf;
    lb += c * bound;
  }
  return lb;
}

void imply_le(Model& m, Var b, const LinExpr& expr, double rhs, const std::string& name) {
  const double ub = expr_upper_bound(m, expr);
  if (!std::isfinite(ub)) {
    throw std::invalid_argument("imply_le: expression unbounded above, no finite big-M");
  }
  const double big_m = ub - rhs;
  if (big_m <= 0) return;  // already implied for every assignment
  // expr + M b <= rhs + M
  LinExpr e = expr;
  e.add_term(b, big_m);
  m.add_le(std::move(e), rhs + big_m, name);
}

void imply_ge(Model& m, Var b, const LinExpr& expr, double rhs, const std::string& name) {
  const double lb = expr_lower_bound(m, expr);
  if (!std::isfinite(lb)) {
    throw std::invalid_argument("imply_ge: expression unbounded below, no finite big-M");
  }
  const double big_m = rhs - lb;
  if (big_m <= 0) return;
  // expr - M b >= rhs - M
  LinExpr e = expr;
  e.add_term(b, -big_m);
  m.add_ge(std::move(e), rhs - big_m, name);
}

}  // namespace wnet::milp
