#include "milp/cuts.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "milp/tol.h"

namespace wnet::milp {

namespace {

/// FNV-1a over the cut's structure only — sorted var ids and sense, never
/// coefficient bits. Epsilon-perturbed duplicates therefore always land in
/// the same bucket; members are then compared coefficient-wise with
/// tolerances.
uint64_t structure_hash(const std::vector<std::pair<int, double>>& terms, Sense sense) {
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(sense));
  for (const auto& [id, coef] : terms) {
    (void)coef;
    mix(static_cast<uint64_t>(id) + 1);
  }
  return h;
}

bool close(double a, double b) { return std::abs(a - b) <= tol::kCutCoefTol; }

}  // namespace

bool CutPool::add(Cut cut) {
  ++stats_.proposed;

  Row row;
  row.sense = cut.sense;
  row.rhs = cut.rhs - cut.expr.constant();
  row.name = std::move(cut.name);
  for (const auto& [v, coef] : cut.expr.terms()) row.terms.emplace_back(v.id, coef);

  // Normalize: kGe becomes kLe by negation, then scale so max |coef| = 1.
  if (row.sense == Sense::kGe) {
    row.sense = Sense::kLe;
    for (auto& [id, coef] : row.terms) coef = -coef;
    row.rhs = -row.rhs;
  }
  double scale = 0.0;
  for (const auto& [id, coef] : row.terms) scale = std::max(scale, std::abs(coef));
  if (scale > 0.0) {
    const double inv = 1.0 / scale;
    for (auto& [id, coef] : row.terms) coef *= inv;
    row.rhs *= inv;
  }
  row.terms.erase(std::remove_if(row.terms.begin(), row.terms.end(),
                                 [](const std::pair<int, double>& t) {
                                   return std::abs(t.second) < tol::kCutCoefZero;
                                 }),
                  row.terms.end());

  for (const auto& [id, coef] : row.terms) row.max_var = std::max(row.max_var, id);

  const uint64_t h = structure_hash(row.terms, row.sense);
  const auto [lo, hi] = index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    const Row& other = rows_[it->second];
    if (other.sense != row.sense || other.terms.size() != row.terms.size()) continue;
    bool same = close(other.rhs, row.rhs);
    for (size_t k = 0; same && k < row.terms.size(); ++k) {
      same = other.terms[k].first == row.terms[k].first &&
             close(other.terms[k].second, row.terms[k].second);
    }
    if (same) {
      ++stats_.duplicates;
      return false;
    }
  }

  index_.emplace(h, rows_.size());
  rows_.push_back(std::move(row));
  ++stats_.pooled;
  return true;
}

double CutPool::violation(size_t idx, const std::vector<double>& x) const {
  const Row& row = rows_[idx];
  // Dimension guard: a cut referencing columns the point does not have
  // (shared pool carried back to a smaller model) is explicitly rejected —
  // reading x[id] out of range was the old behavior and is never meaningful.
  if (row.max_var >= static_cast<int>(x.size())) return 0.0;
  double activity = 0.0;
  for (const auto& [id, coef] : row.terms) {
    activity += coef * x[static_cast<size_t>(id)];
  }
  const double v = activity - row.rhs;
  return row.sense == Sense::kEq ? std::abs(v) : v;
}

double CutPool::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (size_t i = 0; i < rows_.size(); ++i) worst = std::max(worst, violation(i, x));
  return worst;
}

void CutPool::mark_active(size_t idx) {
  Row& row = rows_[idx];
  row.state = CutState::kActive;
  row.age = 0;
  ++stats_.activated;
}

std::vector<size_t> CutPool::select_violated(const std::vector<double>& x,
                                             const CutPoolOptions& opts,
                                             int num_cols) {
  // The LP point x carries trailing slack columns; without an explicit
  // column count, anything indexable is considered compatible.
  const int cols = num_cols >= 0 ? num_cols : static_cast<int>(x.size());
  std::vector<std::pair<double, size_t>> ranked;  // (violation, index)
  for (size_t i = 0; i < rows_.size(); ++i) {
    Row& row = rows_[i];
    if (row.state != CutState::kPooled) continue;
    // Dimension-incompatible cuts are invisible to this solve: selecting
    // one would append a row indexing columns the LP does not have, and
    // aging one would purge a cut that is perfectly valid for the larger
    // model it came from.
    if (row.max_var >= cols) continue;
    const double v = violation(i, x);
    if (v >= opts.min_violation) {
      ranked.emplace_back(v, i);
    } else if (++row.age > opts.max_age) {
      row.state = CutState::kPurged;
      ++stats_.purged;
    }
  }
  // Most violated first; insertion order breaks ties deterministically.
  std::stable_sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  if (opts.max_cuts_per_round >= 0 &&
      ranked.size() > static_cast<size_t>(opts.max_cuts_per_round)) {
    ranked.resize(static_cast<size_t>(opts.max_cuts_per_round));
  }
  std::vector<size_t> picked;
  picked.reserve(ranked.size());
  for (const auto& [v, i] : ranked) {
    rows_[i].state = CutState::kActive;
    rows_[i].age = 0;
    ++stats_.activated;
    picked.push_back(i);
  }
  return picked;
}

}  // namespace wnet::milp
