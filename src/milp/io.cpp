#include "milp/io.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace wnet::milp {

namespace {

const char* row_type(Sense s) {
  switch (s) {
    case Sense::kLe: return "L";
    case Sense::kGe: return "G";
    case Sense::kEq: return "E";
  }
  return "L";
}

void emit_value(std::ostringstream& os, const std::string& row, double v) {
  os << "    " << row << "  " << v << '\n';
}

}  // namespace

std::string to_mps_string(const Model& model, const std::string& name) {
  std::ostringstream os;
  os << "NAME          " << name << '\n';

  os << "ROWS\n N  COST\n";
  for (int i = 0; i < model.num_constrs(); ++i) {
    os << ' ' << row_type(model.constrs()[static_cast<size_t>(i)].sense) << "  C"
       << i << '\n';
  }

  // COLUMNS: integer variables inside INTORG/INTEND markers.
  os << "COLUMNS\n";
  bool in_int = false;
  int marker = 0;
  for (int j = 0; j < model.num_vars(); ++j) {
    const VarData& vd = model.vars()[static_cast<size_t>(j)];
    const bool is_int = vd.type != VarType::kContinuous;
    if (is_int != in_int) {
      os << "    MARKER    'MARKER'    '" << (is_int ? "INTORG" : "INTEND") << "'  M"
         << marker++ << '\n';
      in_int = is_int;
    }
    const Var v{j};
    const auto it = model.objective().terms().find(v);
    if (it != model.objective().terms().end() && it->second != 0.0) {
      os << "    X" << j << "  ";
      emit_value(os, "COST", it->second);
    }
    for (int i = 0; i < model.num_constrs(); ++i) {
      const auto& terms = model.constrs()[static_cast<size_t>(i)].expr.terms();
      const auto ct = terms.find(v);
      if (ct != terms.end() && ct->second != 0.0) {
        os << "    X" << j << "  ";
        emit_value(os, "C" + std::to_string(i), ct->second);
      }
    }
  }
  if (in_int) os << "    MARKER    'MARKER'    'INTEND'  M" << marker++ << '\n';

  os << "RHS\n";
  for (int i = 0; i < model.num_constrs(); ++i) {
    const double rhs = model.constrs()[static_cast<size_t>(i)].rhs;
    if (rhs != 0.0) {
      os << "    RHS  ";
      emit_value(os, "C" + std::to_string(i), rhs);
    }
  }

  os << "BOUNDS\n";
  for (int j = 0; j < model.num_vars(); ++j) {
    const VarData& vd = model.vars()[static_cast<size_t>(j)];
    if (std::isinf(vd.lb) && std::isinf(vd.ub)) {
      os << " FR BND  X" << j << '\n';
      continue;
    }
    if (std::isinf(vd.lb)) {
      os << " MI BND  X" << j << '\n';
    } else if (vd.lb != 0.0) {
      os << " LO BND  X" << j << "  " << vd.lb << '\n';
    }
    if (!std::isinf(vd.ub)) {
      os << " UP BND  X" << j << "  " << vd.ub << '\n';
    }
  }

  os << "ENDATA\n";
  return os.str();
}

void write_mps_file(const Model& model, const std::string& path, const std::string& name) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_mps_file: cannot open " + path);
  out << to_mps_string(model, name);
}

void write_lp_file(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_lp_file: cannot open " + path);
  out << model.to_lp_string();
}

}  // namespace wnet::milp
