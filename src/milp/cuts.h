#pragma once

/// Cut pool + separation callbacks for the branch-and-bound core.
///
/// A separator inspects an LP point and proposes violated rows ("cuts").
/// Two kinds share this interface:
///
///  - Valid cuts: implied by the model, they only tighten the relaxation.
///  - Lazy constraints: REAL rows of the intended problem that the encoder
///    deliberately left out (EncoderOptions::lazy_separation). These are
///    not optional — an integer point violating one must never be accepted
///    as an incumbent, so the solver re-runs every separator on candidate
///    incumbents before accepting them (the lazy gate in try_incumbent).
///
/// Pooled cuts are deduplicated with the unified tolerances from
/// milp/tol.h (never exact double comparison: separators rebuild rows from
/// floating-point arithmetic, so the same cut arrives perturbed in the
/// last bits), selected most-violated-first per round, and aged out when
/// they stay unviolated for too many rounds without ever being activated.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "milp/model.h"
#include "milp/tol.h"

namespace wnet::milp {

/// One proposed row: expr `sense` rhs over structural model variables.
/// The expression's constant is folded into the rhs on pooling.
struct Cut {
  LinExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Pool configuration; embedded in SolveOptions::cuts.
struct CutPoolOptions {
  /// Minimum normalized violation (max |coef| scaled to 1) for a pooled cut
  /// to be activated into the LP.
  double min_violation = tol::kCutViolation;
  /// At most this many cuts enter the LP per separation round.
  int max_cuts_per_round = 64;
  /// An inactive cut that goes this many selection rounds without ever
  /// being violated is purged (stops being considered; it stays readable
  /// for the oracle tests).
  int max_age = 64;
};

/// Lifetime of a pooled cut. Purged cuts remain in `cuts()` (the safety
/// oracle audits every cut ever pooled) but are never selected again.
enum class CutState : uint8_t { kPooled, kActive, kPurged };

struct CutPoolStats {
  long proposed = 0;    ///< add() calls
  long pooled = 0;      ///< accepted as new
  long duplicates = 0;  ///< rejected by tolerance-aware dedup
  long activated = 0;   ///< entered the LP
  long purged = 0;      ///< aged out before ever activating
};

/// Deduplicating store of cuts with violation-ranked selection and aging.
/// Not thread-safe; the B&B separation loop runs on the serial spine.
class CutPool {
 public:
  /// Pools a cut unless a tolerance-equal row is already present. The row
  /// is normalized first (kGe flipped to kLe, terms merged, constant folded
  /// into the rhs, coefficients scaled so max |coef| = 1), so scaled
  /// duplicates (2x + 2y <= 2 vs x + y <= 1) and epsilon-perturbed
  /// duplicates both dedup. Returns true if the cut was new.
  bool add(Cut cut);

  /// Normalized violation of pooled cut `idx` at point `x` (indexed by var
  /// id; extra trailing entries such as LP slacks are ignored). Positive
  /// means violated. A cut referencing a var id beyond `x` is dimension-
  /// incompatible with the point and reports 0 (explicit reject: such a row
  /// can never enter this LP, so it must never veto an incumbent either).
  /// Var ids are stable under IncrementalEncoder appends, so a pool shared
  /// across K* ladder rungs only ever holds cuts from a *larger* model than
  /// the one being re-solved — never cuts whose ids were remapped.
  [[nodiscard]] double violation(size_t idx, const std::vector<double>& x) const;

  /// Largest violation over every cut ever pooled, regardless of state.
  /// The solver's lazy gate uses this to reject an integer point that
  /// violates an already-active (or purged) row. 0 for an empty pool.
  /// Dimension-incompatible cuts (see violation()) contribute 0.
  [[nodiscard]] double max_violation(const std::vector<double>& x) const;

  /// One selection round: ranks the never-activated cuts by violation at
  /// `x`, marks up to `max_cuts_per_round` most-violated ones (violation >=
  /// `min_violation`) active and returns their indices, ties broken by
  /// insertion order. Every inactive cut left unviolated ages by one round;
  /// cuts older than `max_age` are purged. Cuts referencing var ids >=
  /// `num_cols` (a shared pool holding rows from a later, larger model) are
  /// skipped entirely: never selected, never aged — they stay pooled for
  /// the solve they do fit. `num_cols < 0` means no column limit beyond
  /// x.size().
  [[nodiscard]] std::vector<size_t> select_violated(const std::vector<double>& x,
                                                    const CutPoolOptions& opts,
                                                    int num_cols = -1);

  /// Largest var id referenced by cut `idx` (-1 for a constant row). The
  /// solver uses this to fence off cuts that do not fit the current model's
  /// column space.
  [[nodiscard]] int max_var_id(size_t idx) const { return rows_[idx].max_var; }

  /// True when cut `idx` only references var ids < num_cols, i.e. the row
  /// can be appended to an LP with that many structural columns.
  [[nodiscard]] bool fits(size_t idx, int num_cols) const {
    return rows_[idx].max_var < num_cols;
  }

  /// Marks cut `idx` active (age reset, activation counted) without going
  /// through a selection round. The solver's integral gate uses this: when
  /// an integer point violates a pooled row, that row must enter the LP no
  /// matter its state — with a shared pool, kActive can mean "active in an
  /// earlier solve's LP", and even purged rows must be recoverable, or the
  /// gate would reject the point without being able to make progress.
  void mark_active(size_t idx);

  /// Terms of pooled cut `idx` in normalized form: unique ascending var
  /// ids, sense kLe or kEq, max |coef| = 1. This is the exact row the
  /// solver appends to the LP.
  [[nodiscard]] const std::vector<std::pair<int, double>>& terms(size_t idx) const {
    return rows_[idx].terms;
  }
  [[nodiscard]] Sense sense(size_t idx) const { return rows_[idx].sense; }
  [[nodiscard]] double rhs(size_t idx) const { return rows_[idx].rhs; }
  [[nodiscard]] const std::string& name(size_t idx) const { return rows_[idx].name; }
  [[nodiscard]] CutState state(size_t idx) const { return rows_[idx].state; }

  /// Number of cuts ever pooled (including purged ones).
  [[nodiscard]] size_t size() const { return rows_.size(); }

  [[nodiscard]] const CutPoolStats& stats() const { return stats_; }

 private:
  struct Row {
    std::vector<std::pair<int, double>> terms;  ///< normalized, sorted by id
    Sense sense = Sense::kLe;                   ///< kLe or kEq after normalization
    double rhs = 0.0;
    std::string name;
    CutState state = CutState::kPooled;
    int age = 0;       ///< selection rounds spent unviolated while pooled
    int max_var = -1;  ///< largest var id in terms (dimension guard)
  };

  /// Buckets by structure (sorted var ids + sense), so lookup never
  /// compares raw doubles; members are compared coefficient-wise with
  /// tol::kCutCoefTol.
  std::unordered_multimap<uint64_t, size_t> index_;
  std::vector<Row> rows_;
  CutPoolStats stats_;
};

/// What a separator sees: the LP point plus where in the tree it came from.
struct SeparationContext {
  /// Current point, indexed by model var id (may carry extra trailing LP
  /// columns; separators must only index [0, num_vars)).
  const std::vector<double>& x;
  long node = 0;          ///< B&B nodes processed when separation ran (0 = root)
  int depth = 0;          ///< tree depth of the separated node
  bool integral = false;  ///< x is integer-feasible for the encoded model
  double lp_objective = 0.0;
};

/// Separators add violated cuts to the pool; the solver decides which
/// pooled cuts enter the LP. Implementations must be deterministic (the
/// whole separation loop runs on the serial spine) and must only propose
/// rows valid for every integer-feasible point of the intended problem.
using SeparationCallback = std::function<void(const SeparationContext&, CutPool&)>;

/// Separation configuration; embedded in SolveOptions::cuts. With no
/// separators the solver behaves exactly as before this interface existed.
struct CutOptions {
  std::vector<SeparationCallback> separators;
  CutPoolOptions pool;
  /// Separation/re-solve rounds at the root before any branching.
  int max_rounds_root = 20;
  /// Separation/re-solve rounds per node on fractional points. The lazy
  /// gate on integer points is not bounded by this — it is a correctness
  /// requirement, not a strengthening heuristic.
  int max_rounds_node = 4;
  /// Optional externally owned pool, shared across solves and inspectable
  /// by tests (the cut-safety oracle audits it after the solve). Must
  /// outlive the solve; when null the solver uses a private pool.
  CutPool* shared_pool = nullptr;
};

}  // namespace wnet::milp
