// Reproduces Table 4 of the paper: solution cost and solver time of the
// approximate encoding as K* sweeps {1, 3, 5, 10, 20}, on a small template
// T1 (where the exact optimum from the full encoding is also computed) and
// a larger template T2 (where full enumeration times out, as in the paper).
//
// Expected shape: cost is non-increasing in K* and approaches the exact
// optimum; time grows steeply for large K*; K*=1 (fixed routing) is the
// heuristic regime of prior work with optimal sizing on a fixed topology.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

struct TemplateSpec {
  const char* name;
  int nodes;
  int devices;
  bool solve_full;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "30"},
                    {"full-time-limit", "180"},
                    {"gap", "0.02"},
                    {"paper", "0"}});

  std::vector<TemplateSpec> templates = {{"T1", 30, 10, true}, {"T2", 80, 40, false}};
  if (args.getb("paper")) {
    templates = {{"T1", 50, 20, true}, {"T2", 250, 200, false}};
  }
  const std::vector<int> ks = {1, 3, 5, 10, 20};

  util::Table table({"Template", "Result", "K*=1", "K*=3", "K*=5", "K*=10", "K*=20", "opt"});

  for (const TemplateSpec& ts : templates) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = ts.nodes;
    cfg.end_devices = ts.devices;
    const auto sc = workloads::make_scalable(cfg);
    Explorer ex(*sc->tmpl, sc->spec);

    std::vector<std::string> cost_row = {ts.name, "Cost ($)"};
    std::vector<std::string> time_row = {ts.name, "Time (s)"};
    for (int k : ks) {
      EncoderOptions eo;
      eo.k_star = k;
      milp::SolveOptions so;
      so.time_limit_s = args.getd("time-limit");
      so.rel_gap = args.getd("gap");
      const auto res = ex.explore(eo, so);
      if (res.has_solution()) {
        cost_row.push_back(util::fmt_double(res.architecture.total_cost_usd, 0));
        time_row.push_back(util::fmt_double(res.total_time_s, 1));
      } else {
        cost_row.push_back("-");
        time_row.push_back(milp::to_string(res.status));
      }
      std::fflush(stdout);
    }
    if (ts.solve_full) {
      EncoderOptions full;
      full.mode = EncoderOptions::PathMode::kFull;
      milp::SolveOptions so;
      so.time_limit_s = args.getd("full-time-limit");
      so.rel_gap = args.getd("gap");
      const auto res = ex.explore(full, so);
      if (res.status == milp::SolveStatus::kOptimal) {
        cost_row.push_back(util::fmt_double(res.architecture.total_cost_usd, 0));
        time_row.push_back(util::fmt_double(res.total_time_s, 1));
      } else if (res.has_solution()) {
        cost_row.push_back(util::fmt_double(res.architecture.total_cost_usd, 0) + "*");
        time_row.push_back("TO");
      } else {
        cost_row.push_back("-");
        time_row.push_back("TO");
      }
    } else {
      cost_row.push_back("-");
      time_row.push_back("TO");
    }
    table.add_row(cost_row);
    table.add_row(time_row);
  }

  std::printf("'opt' = exact full-enumeration encoding; '*' = best incumbent at timeout\n");
  bench::print_table("Table 4: cost/time vs K* (approximate encoding)", table);
  return 0;
}
