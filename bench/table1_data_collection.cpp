// Reproduces Table 1 of the paper: a data-collection WSN synthesized for
// three objectives (dollar cost, energy, equally-weighted combination),
// reporting final node count, dollar cost, average node lifetime, and
// solver time.
//
// Default template is scaled down from the paper's 136 nodes so the run
// finishes in minutes on one core; pass --paper for the full-size template
// (expect a long run). Absolute values differ from the paper (our solver is
// not CPLEX and the library is synthetic); the *shape* must hold:
//   - the energy-optimal design costs more dollars and lives longer,
//   - the combined objective lands in between on both metrics.
#include <cstdio>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"sensors", "12"},
                    {"gx", "6"},
                    {"gy", "5"},
                    {"kstar", "10"},
                    {"time-limit", "45"},
                    {"gap", "0.03"},
                    {"paper", "0"}});

  workloads::DataCollectionConfig cfg;
  if (args.getb("paper")) {
    cfg.sensors = 35;
    cfg.relay_grid_x = 10;
    cfg.relay_grid_y = 10;
  } else {
    cfg.sensors = args.geti("sensors");
    cfg.relay_grid_x = args.geti("gx");
    cfg.relay_grid_y = args.geti("gy");
  }

  struct Row {
    const char* name;
    Objective objective;
  };
  // The paper weighs the combination "equally"; energy (mA*s per cycle) and
  // dollars live on different scales, so equal weight means scale-matched.
  const Row rows[] = {
      {"$ cost", {1.0, 0.0, 0.0}},
      {"Energy", {0.0, 1.0, 0.0}},
      {"$ + Energy", {1.0, 50.0, 0.0}},
  };

  util::Table table({"Objective", "# Nodes", "$ cost", "Lifetime (y)", "Status", "Time (s)"});
  for (const Row& row : rows) {
    const auto sc = workloads::make_data_collection(cfg);
    sc->spec.objective = row.objective;
    Explorer ex(*sc->tmpl, sc->spec);
    EncoderOptions eo;
    eo.k_star = args.geti("kstar");
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = args.getd("gap");
    const auto res = ex.explore(eo, so);
    if (!res.has_solution()) {
      table.add_row({row.name, "-", "-", "-", milp::to_string(res.status),
                     util::fmt_double(res.total_time_s, 1)});
      continue;
    }
    const auto rep = verify_architecture(res.architecture, *sc->tmpl, sc->spec);
    table.add_row({row.name, std::to_string(res.architecture.num_nodes()),
                   util::fmt_double(res.architecture.total_cost_usd, 0),
                   util::fmt_double(res.architecture.avg_lifetime_years, 2),
                   rep.ok ? milp::to_string(res.status) : "VERIFY-FAIL",
                   util::fmt_double(res.total_time_s, 1)});
  }
  std::printf("template: %d sensors, %d relay candidates, K*=%d\n", cfg.sensors,
              cfg.relay_grid_x * cfg.relay_grid_y, args.geti("kstar"));
  bench::print_table("Table 1: data-collection WSN, objective sweep", table);
  return 0;
}
