// Micro-benchmarks (google-benchmark) of the computational kernels behind
// the tables: shortest paths, Yen's K-shortest, the multi-wall channel
// model, sparse LU factorization, one dual-simplex LP solve, a full
// Algorithm 1 encoding pass, and scalar-vs-vector pairs for every SIMD
// dispatch kernel (BM_Simd*; the /scalar and /widest variants compute
// bit-identical results, so the ratio is pure ISA speedup).
#include <benchmark/benchmark.h>

#include <random>

#include "channel/propagation.h"
#include "core/encode/encoder.h"
#include "core/workloads/scenarios.h"
#include "geometry/floorplan.h"
#include "graph/dijkstra.h"
#include "graph/yen.h"
#include "milp/simplex/dual_simplex.h"
#include "milp/simplex/lu.h"
#include "util/simd/simd.h"

using namespace wnet;

namespace {

graph::Digraph make_grid(int n) {
  graph::Digraph g(n * n);
  auto id = [n](int x, int y) { return y * n + x; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      if (x + 1 < n) {
        g.add_edge(id(x, y), id(x + 1, y), 1.0 + 0.01 * ((x + y) % 7));
        g.add_edge(id(x + 1, y), id(x, y), 1.0 + 0.01 * ((x * y) % 5));
      }
      if (y + 1 < n) {
        g.add_edge(id(x, y), id(x, y + 1), 1.0 + 0.01 * ((x + 2 * y) % 6));
        g.add_edge(id(x, y + 1), id(x, y), 1.0 + 0.01 * ((2 * x + y) % 4));
      }
    }
  }
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const auto g = make_grid(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::shortest_path(g, 0, g.num_nodes() - 1));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(10)->Arg(20)->Arg(40);

void BM_YenKShortest(benchmark::State& state) {
  const auto g = make_grid(12);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::yen_k_shortest(g, 0, g.num_nodes() - 1, k));
  }
}
BENCHMARK(BM_YenKShortest)->Arg(1)->Arg(5)->Arg(10)->Arg(20);

void BM_YenResume(benchmark::State& state) {
  // The K* ladder workload: grow the candidate set 5 -> K. The resumable
  // enumerator derives only the K-5 new paths; compare with BM_YenRestart,
  // which re-enumerates from scratch like a fresh encode would.
  const auto g = make_grid(12);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    graph::YenEnumerator en(g, 0, g.num_nodes() - 1);
    en.next_batch(5);
    benchmark::DoNotOptimize(en.next_batch(k));
  }
}
BENCHMARK(BM_YenResume)->Arg(10)->Arg(20)->Arg(40);

void BM_YenRestart(benchmark::State& state) {
  const auto g = make_grid(12);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::yen_k_shortest(g, 0, g.num_nodes() - 1, 5));
    benchmark::DoNotOptimize(graph::yen_k_shortest(g, 0, g.num_nodes() - 1, k));
  }
}
BENCHMARK(BM_YenRestart)->Arg(10)->Arg(20)->Arg(40);

void BM_MultiWallPathLoss(benchmark::State& state) {
  const auto plan = geom::make_office_floor(80, 45, 8);
  const channel::MultiWallModel model(2.4e9, 2.8, plan);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.1;
    if (x > 70) x = 0;
    benchmark::DoNotOptimize(model.path_loss_db({x, 5}, {79 - x, 40}));
  }
}
BENCHMARK(BM_MultiWallPathLoss);

void BM_LuFactorize(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  milp::simplex::SparseMatrix a(m, m);
  for (int j = 0; j < m; ++j) {
    std::vector<milp::simplex::Entry> col{{j, 4.0 + (j % 3)}};
    if (j > 0) col.push_back({j - 1, -1.0});
    if (j + 1 < m) col.push_back({j + 1, -0.5});
    if (j > 7) col.push_back({j - 7, 0.25});
    std::sort(col.begin(), col.end(), [](auto& l, auto& r) { return l.row < r.row; });
    a.set_column(j, std::move(col));
  }
  std::vector<int> basis(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;
  for (auto _ : state) {
    milp::simplex::BasisLu lu;
    benchmark::DoNotOptimize(lu.factorize(a, basis));
  }
}
BENCHMARK(BM_LuFactorize)->Arg(100)->Arg(500)->Arg(2000);

/// Block-tridiagonal basis (16-row blocks): the dependency chain of a unit
/// right-hand side stays inside one block, the shape the encoder's
/// per-node / per-edge rows give the simplex bases. A dense ftran still
/// sweeps all m positions; the hyper-sparse path only walks the block.
milp::simplex::BasisLu make_block_lu(int m) {
  constexpr int kBlock = 16;
  milp::simplex::SparseMatrix a(m, m);
  for (int j = 0; j < m; ++j) {
    std::vector<milp::simplex::Entry> col{{j, 4.0 + (j % 3)}};
    if (j > 0 && j % kBlock != 0) col.push_back({j - 1, -1.0});
    if (j + 1 < m && (j + 1) % kBlock != 0) col.push_back({j + 1, -0.5});
    std::sort(col.begin(), col.end(), [](auto& l, auto& r) { return l.row < r.row; });
    a.set_column(j, std::move(col));
  }
  std::vector<int> basis(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;
  milp::simplex::BasisLu lu;
  lu.factorize(a, basis);
  return lu;
}

void BM_FtranDenseUnitRhs(benchmark::State& state) {
  // Single-nonzero right-hand sides are the common case in dual simplex
  // (entering columns with one structural coefficient, bound flips). The
  // dense ftran sweeps all m positions regardless.
  const int m = static_cast<int>(state.range(0));
  const auto lu = make_block_lu(m);
  std::vector<double> x(static_cast<size_t>(m), 0.0);
  int row = 0;
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<size_t>(row)] = 1.25;
    lu.ftran(x);
    benchmark::DoNotOptimize(x.data());
    row = (row + 17) % m;
  }
}
BENCHMARK(BM_FtranDenseUnitRhs)->Arg(100)->Arg(500)->Arg(2000);

void BM_FtranUnit(benchmark::State& state) {
  // The hyper-sparse path: reachability-guided, touches only the nonzero
  // pattern. Bitwise-identical results (see lu_test.cpp).
  const int m = static_cast<int>(state.range(0));
  const auto lu = make_block_lu(m);
  std::vector<double> x(static_cast<size_t>(m), 0.0);
  int row = 0;
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    lu.ftran_unit(x, row, 1.25);
    benchmark::DoNotOptimize(x.data());
    row = (row + 17) % m;
  }
}
BENCHMARK(BM_FtranUnit)->Arg(100)->Arg(500)->Arg(2000);

void BM_DualSimplexTransport(benchmark::State& state) {
  // Transportation LP: s suppliers x s consumers.
  const int s = static_cast<int>(state.range(0));
  milp::Model m;
  std::vector<milp::Var> x;
  milp::LinExpr obj;
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      x.push_back(m.add_continuous("x", 0.0, 50.0));
      obj += (1.0 + ((i * 7 + j * 3) % 11)) * milp::LinExpr(x.back());
    }
  }
  for (int i = 0; i < s; ++i) {
    milp::LinExpr row, col;
    for (int j = 0; j < s; ++j) {
      row += milp::LinExpr(x[static_cast<size_t>(i * s + j)]);
      col += milp::LinExpr(x[static_cast<size_t>(j * s + i)]);
    }
    m.add_le(std::move(row), 30.0 + i);
    m.add_ge(std::move(col), 20.0 + (i % 5));
  }
  m.minimize(obj);
  const milp::simplex::StandardLp lp(m);
  for (auto _ : state) {
    milp::simplex::DualSimplex ds(lp);
    benchmark::DoNotOptimize(ds.solve());
  }
}
BENCHMARK(BM_DualSimplexTransport)->Arg(5)->Arg(15)->Arg(30);

void BM_EncodeApprox(benchmark::State& state) {
  archex::workloads::ScalableConfig cfg;
  cfg.total_nodes = static_cast<int>(state.range(0));
  cfg.end_devices = cfg.total_nodes / 3;
  const auto sc = archex::workloads::make_scalable(cfg);
  archex::EncoderOptions eo;
  eo.k_star = 10;
  const archex::Encoder enc(*sc->tmpl, sc->spec, eo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode());
  }
}
BENCHMARK(BM_EncodeApprox)->Arg(30)->Arg(60)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// SIMD dispatch pairs. Each BM_Simd* benchmark is registered twice — forced
// scalar and forced widest-supported ISA — over identical deterministic
// inputs. Outputs are bit-identical by the dispatch contract; the pair's
// time ratio is the kernel speedup reported in EXPERIMENTS.md.

namespace simd = util::simd;

/// Deterministic kernel workload shared by the pair benchmarks: a sparse
/// gather/scatter pattern of `len` distinct rows in a `dim`-sized dense
/// operand, plus dense operands for the element-wise kernels.
struct SimdFixture {
  std::vector<int32_t> rows;
  std::vector<double> values;
  std::vector<double> dense;
  std::vector<double> dense2;

  SimdFixture(int dim, int len) {
    std::mt19937_64 rng(12345);
    std::vector<int> all(static_cast<size_t>(dim));
    for (int i = 0; i < dim; ++i) all[static_cast<size_t>(i)] = i;
    std::shuffle(all.begin(), all.end(), rng);
    std::uniform_real_distribution<double> val(-2.0, 2.0);
    for (int i = 0; i < len; ++i) {
      rows.push_back(static_cast<int32_t>(all[static_cast<size_t>(i)]));
      values.push_back(val(rng));
    }
    std::sort(rows.begin(), rows.end());
    for (int i = 0; i < dim; ++i) {
      dense.push_back(val(rng));
      dense2.push_back(val(rng) + 2.5);
    }
  }
};

void BM_SimdGatherDot(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const SimdFixture f(8192, 1024);
  const auto& k = simd::kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        k.gather_dot(f.rows.data(), f.values.data(),
                     static_cast<int>(f.rows.size()), f.dense.data()));
  }
}
BENCHMARK_CAPTURE(BM_SimdGatherDot, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdGatherDot, widest, simd::widest_supported());

void BM_SimdScatterAxpy(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const SimdFixture f(8192, 1024);
  std::vector<double> dense = f.dense;
  const auto& k = simd::kernels();
  for (auto _ : state) {
    k.scatter_axpy(f.rows.data(), f.values.data(), static_cast<int>(f.rows.size()),
                   1e-9, dense.data());
    benchmark::DoNotOptimize(dense.data());
  }
}
BENCHMARK_CAPTURE(BM_SimdScatterAxpy, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdScatterAxpy, widest, simd::widest_supported());

void BM_SimdDenseAxpy(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const SimdFixture f(4096, 1);
  std::vector<double> y = f.dense;
  const auto& k = simd::kernels();
  for (auto _ : state) {
    k.dense_axpy(y.data(), f.dense2.data(), 1e-9, static_cast<int>(y.size()));
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK_CAPTURE(BM_SimdDenseAxpy, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdDenseAxpy, widest, simd::widest_supported());

void BM_SimdRowActivity(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const SimdFixture f(8192, 1024);
  const auto& k = simd::kernels();
  for (auto _ : state) {
    double lo = 0.0, hi = 0.0;
    k.row_activity(f.rows.data(), f.values.data(), static_cast<int>(f.rows.size()),
                   f.dense.data(), f.dense2.data(), &lo, &hi);
    benchmark::DoNotOptimize(lo);
    benchmark::DoNotOptimize(hi);
  }
}
BENCHMARK_CAPTURE(BM_SimdRowActivity, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdRowActivity, widest, simd::widest_supported());

void BM_SimdPairDistances(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const SimdFixture f(4096, 1);
  std::vector<double> out(f.dense.size());
  const auto& k = simd::kernels();
  for (auto _ : state) {
    k.pair_distances(f.dense.data(), f.dense2.data(), static_cast<int>(out.size()),
                     0.5, -0.25, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_SimdPairDistances, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdPairDistances, widest, simd::widest_supported());

void BM_SimdWallClassify(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  // Full multi-wall crossing accumulation over the reference office floor:
  // the segment_classify kernel plus the scalar fallback for grazing hits.
  const auto plan = geom::make_office_floor(80, 45, 8);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.1;
    if (x > 70) x = 0;
    benchmark::DoNotOptimize(plan.wall_loss_db({x, 5}, {79 - x, 40}));
  }
}
BENCHMARK_CAPTURE(BM_SimdWallClassify, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdWallClassify, widest, simd::widest_supported());

void BM_SimdPathLossBatch(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const channel::LogDistanceModel model(2.4e9, 2.8);
  const SimdFixture f(1024, 1);
  std::vector<double> out(f.dense.size());
  for (auto _ : state) {
    model.path_loss_batch({0.5, -0.25}, f.dense.data(), f.dense2.data(),
                          static_cast<int>(out.size()), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_SimdPathLossBatch, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdPathLossBatch, widest, simd::widest_supported());

void BM_SimdFtranBtran(benchmark::State& state, simd::Level level) {
  const simd::ScopedLevel forced(level);
  if (!forced.ok()) {
    state.SkipWithError("dispatch level unavailable on this host");
    return;
  }
  const int m = 2000;
  const auto lu = make_block_lu(m);
  std::vector<double> x(static_cast<size_t>(m), 0.0);
  int row = 0;
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<size_t>(row)] = 1.25;
    lu.ftran(x);
    lu.btran(x);
    benchmark::DoNotOptimize(x.data());
    row = (row + 17) % m;
  }
}
BENCHMARK_CAPTURE(BM_SimdFtranBtran, scalar, simd::Level::kScalar);
BENCHMARK_CAPTURE(BM_SimdFtranBtran, widest, simd::widest_supported());

}  // namespace

BENCHMARK_MAIN();
