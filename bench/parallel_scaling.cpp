// Parallel-exploration scaling harness, on the Table-3 scalability
// workload: end-to-end wall clock of (a) the Sec. 4.3 K*-ladder auto-search
// (independent encode+solve per rung, fanned out by KStarSearchOptions::
// threads) and (b) a fault-injection campaign replay (independent scenario
// scoring, fanned out by faults::CampaignRunner) as the worker count grows.
//
// Besides speedup, every multi-threaded run is checked against the serial
// one: same chosen K*, same objective, byte-identical campaign JSON. The
// determinism guarantee is the point — parallelism must never change a
// result, only how fast it arrives. Speedup tops out at the machine's
// physical core count; on a single-core host every row stays near 1x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"
#include "core/workloads/scenarios.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"nodes", "80"},
                    {"devices", "30"},
                    {"time-limit", "30"},
                    {"gap", "0.05"},
                    {"draws", "2000"},
                    {"sigma", "2.0"},
                    {"threads", "0"}});

  workloads::ScalableConfig cfg;
  cfg.total_nodes = args.geti("nodes");
  cfg.end_devices = args.geti("devices");
  const auto sc = workloads::make_scalable(cfg);
  std::printf("template: %d nodes, %zu routes | hardware threads: %d\n",
              sc->tmpl->num_nodes(), sc->spec.routes.size(), util::resolve_threads(0));

  std::vector<int> counts = {1, 2, 4, 8};
  if (args.geti("threads") > 0) counts = {1, args.geti("threads")};

  const Explorer ex(*sc->tmpl, sc->spec);
  milp::SolveOptions so;
  so.time_limit_s = args.getd("time-limit");
  so.rel_gap = args.getd("gap");
  Explorer::KStarSearchOptions ko;
  ko.ladder = {1, 3, 5, 10};

  // Scenario list reused across all thread counts (generation is serial
  // and deterministic); the architecture under test is the serial winner.
  faults::FaultModelConfig fc;
  fc.max_simultaneous_failures = 2;
  fc.fading_draws = args.geti("draws");
  fc.fading_sigma_db = args.getd("sigma");
  const faults::FaultModel fm(*sc->tmpl, sc->spec, fc);

  util::Table table({"Threads", "Ladder (s)", "Speedup", "Campaign (s)", "Speedup", "Identical"});
  double ladder_base_s = 0.0;
  double campaign_base_s = 0.0;
  int serial_k = 0;
  double serial_obj = 0.0;
  std::string serial_json;
  std::vector<faults::FaultScenario> scenarios;

  for (const int t : counts) {
    ko.threads = t;
    const util::Stopwatch lsw;
    const auto sr = ex.search_k_star(ko, {}, so);
    const double ladder_s = lsw.seconds();

    if (t == counts.front()) {
      if (!sr.best.has_solution()) {
        std::printf("serial ladder found no architecture — aborting\n");
        return 1;
      }
      scenarios = fm.scenarios(sr.best.architecture);
      serial_k = sr.chosen_k;
      serial_obj = sr.best.objective;
    }

    faults::CampaignOptions copts;
    copts.threads = t;
    const faults::CampaignRunner runner(*sc->tmpl, sc->spec, copts);
    // Replay the SERIAL winner's campaign at every thread count so the
    // byte-identity check compares like with like.
    const util::Stopwatch csw;
    const auto rep = runner.run(sr.best.architecture, scenarios);
    const double campaign_s = csw.seconds();
    const std::string json = rep.to_json();

    if (t == counts.front()) {
      ladder_base_s = ladder_s;
      campaign_base_s = campaign_s;
      serial_json = json;
    }
    const bool identical =
        sr.chosen_k == serial_k && sr.best.objective == serial_obj && json == serial_json;
    table.add_row({std::to_string(t), util::fmt_double(ladder_s, 2),
                   util::fmt_double(ladder_base_s / std::max(1e-9, ladder_s), 2),
                   util::fmt_double(campaign_s, 3),
                   util::fmt_double(campaign_base_s / std::max(1e-9, campaign_s), 2),
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::printf("DETERMINISM VIOLATION at %d threads\n", t);
      bench::print_table("Parallel scaling (ABORTED)", table);
      return 1;
    }
    std::fflush(stdout);
  }

  std::printf("%d scenarios per campaign; ladder {1,3,5,10}\n",
              static_cast<int>(scenarios.size()));
  bench::print_table("Parallel exploration scaling (Table-3 workload)", table);
  return 0;
}
