// Reproduces Table 2 of the paper: anchor placement for an RSS-ranging
// localization network under three objectives (dollar cost, DSOD accuracy
// surrogate, combination), reporting node count, dollar cost, average
// number of anchors reachable from a test point, and solver time.
//
// Expected shape (paper Sec. 4.2): the DSOD objective buys fewer but
// stronger (antenna-equipped) anchors whose signal covers more test
// points; the combined objective sits between the extremes on cost.
#include <cstdio>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"agx", "8"},
                    {"agy", "5"},
                    {"egx", "7"},
                    {"egy", "5"},
                    {"loc-candidates", "20"},
                    {"time-limit", "40"},
                    {"gap", "0.02"},
                    {"paper", "0"}});

  workloads::LocalizationConfig cfg;
  if (args.getb("paper")) {
    cfg.anchor_grid_x = 15;
    cfg.anchor_grid_y = 10;
    cfg.eval_grid_x = 15;
    cfg.eval_grid_y = 9;
  } else {
    cfg.anchor_grid_x = args.geti("agx");
    cfg.anchor_grid_y = args.geti("agy");
    cfg.eval_grid_x = args.geti("egx");
    cfg.eval_grid_y = args.geti("egy");
  }

  struct Row {
    const char* name;
    Objective objective;
  };
  const Row rows[] = {
      {"$ cost", {1.0, 0.0, 0.0}},
      {"DSOD", {0.0, 0.0, 1.0}},
      {"$ + DSOD", {1.0, 0.0, 1.0}},
  };

  util::Table table({"Objective", "# Nodes", "$ cost", "Reachable", "Status", "Time (s)"});
  for (const Row& row : rows) {
    const auto sc = workloads::make_localization(cfg);
    sc->spec.objective = row.objective;
    Explorer ex(*sc->tmpl, sc->spec);
    EncoderOptions eo;
    eo.loc_candidates = args.geti("loc-candidates");
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = args.getd("gap");
    const auto res = ex.explore(eo, so);
    if (!res.has_solution()) {
      table.add_row({row.name, "-", "-", "-", milp::to_string(res.status),
                     util::fmt_double(res.total_time_s, 1)});
      continue;
    }
    const auto rep = verify_architecture(res.architecture, *sc->tmpl, sc->spec);
    table.add_row({row.name, std::to_string(res.architecture.num_nodes()),
                   util::fmt_double(res.architecture.total_cost_usd, 0),
                   util::fmt_double(res.architecture.avg_reachable_anchors, 2),
                   rep.ok ? milp::to_string(res.status) : "VERIFY-FAIL",
                   util::fmt_double(res.total_time_s, 1)});
  }
  std::printf("template: %dx%d anchor candidates, %dx%d eval points, K*=%d anchors/point\n",
              cfg.anchor_grid_x, cfg.anchor_grid_y, cfg.eval_grid_x, cfg.eval_grid_y,
              args.geti("loc-candidates"));
  bench::print_table("Table 2: localization network, objective sweep", table);
  return 0;
}
