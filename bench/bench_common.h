#pragma once

// Shared helpers for the table-reproduction harnesses: a tiny CLI flag
// parser and formatting utilities. Each bench binary regenerates one table
// or figure of the paper (see DESIGN.md, Sec. 5) and prints the same row
// layout, plus a CSV block for machine consumption.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "util/table.h"

namespace wnet::bench {

/// "--key value" / "--flag" parser; unknown keys abort with a message so
/// typos in experiment sweeps never pass silently.
class Args {
 public:
  Args(int argc, char** argv, std::map<std::string, std::string> defaults)
      : values_(std::move(defaults)) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (values_.find(key) == values_.end()) {
        std::fprintf(stderr, "unknown flag --%s; known:", key.c_str());
        for (const auto& [k, v] : values_) std::fprintf(stderr, " --%s(=%s)", k.c_str(), v.c_str());
        std::fprintf(stderr, "\n");
        std::exit(2);
      }
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // bare flag
      }
    }
  }

  [[nodiscard]] int geti(const std::string& k) const { return std::atoi(values_.at(k).c_str()); }
  [[nodiscard]] double getd(const std::string& k) const { return std::atof(values_.at(k).c_str()); }
  [[nodiscard]] bool getb(const std::string& k) const { return values_.at(k) != "0"; }
  [[nodiscard]] const std::string& gets(const std::string& k) const { return values_.at(k); }

 private:
  std::map<std::string, std::string> values_;
};

inline void print_table(const char* title, const util::Table& t) {
  std::printf("\n== %s ==\n%s\n[csv]\n%s[/csv]\n", title, t.to_string().c_str(),
              t.to_csv().c_str());
}

}  // namespace wnet::bench
