// Robustness harness: cost of fault-injection campaigns and of the
// counterexample-guided repair loop on the data-collection workload.
// Reports, per campaign depth k, the scenario count, campaign wall time
// (the replay is purely analytical, so this measures the O(scenarios x
// route links) scan), and what the repair loop buys: pass rate before vs
// after hardening, extra dollar cost, and total repair time.
#include <cstdio>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"
#include "core/workloads/scenarios.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"sensors", "8"},
                    {"grid-x", "5"},
                    {"grid-y", "3"},
                    {"kstar", "8"},
                    {"seed", "1"},
                    {"draws", "100"},
                    {"sigma", "2.0"},
                    {"budget", "120"},
                    {"time-limit", "45"},
                    {"threads", "1"}});  // workers for campaign scoring; 0 = all cores

  workloads::DataCollectionConfig cfg;
  cfg.sensors = args.geti("sensors");
  cfg.relay_grid_x = args.geti("grid-x");
  cfg.relay_grid_y = args.geti("grid-y");
  cfg.route_replicas = 1;
  const auto sc = workloads::make_data_collection(cfg);

  const Explorer explorer(*sc->tmpl, sc->spec);
  EncoderOptions eo;
  eo.k_star = args.geti("kstar");
  milp::SolveOptions so;
  so.time_limit_s = args.getd("time-limit");
  const auto baseline = explorer.explore(eo, so);
  if (!baseline.has_solution()) {
    std::printf("baseline exploration failed (%s)\n", milp::to_string(baseline.status));
    return 1;
  }

  // --- Campaign replay cost as the fault model deepens.
  util::Table replay({"k", "Scenarios", "Pass rate (%)", "Replay (ms)"});
  for (int k = 1; k <= 3; ++k) {
    faults::FaultModelConfig fc;
    fc.seed = static_cast<uint64_t>(args.geti("seed"));
    fc.max_simultaneous_failures = k;
    fc.fading_draws = args.geti("draws");
    fc.fading_sigma_db = args.getd("sigma");
    const faults::FaultModel fm(*sc->tmpl, sc->spec, fc);
    const auto scenarios = fm.scenarios(baseline.architecture);
    faults::CampaignOptions copts;
    copts.threads = util::resolve_threads(args.geti("threads"));
    const util::Stopwatch sw;
    const auto rep =
        faults::CampaignRunner(*sc->tmpl, sc->spec, copts).run(baseline.architecture, scenarios);
    replay.add_row({std::to_string(k), std::to_string(rep.total()),
                    util::fmt_double(100.0 * rep.pass_rate(), 1),
                    util::fmt_double(sw.millis(), 2)});
  }
  std::printf("Campaign replay cost (baseline architecture)\n%s\n", replay.to_string().c_str());

  // --- What the repair loop buys over the baseline.
  Explorer::RobustExploreOptions ro;
  ro.encoder = eo;
  ro.solver = so;
  ro.faults.seed = static_cast<uint64_t>(args.geti("seed"));
  ro.faults.max_simultaneous_failures = 2;
  ro.faults.fading_draws = args.geti("draws");
  ro.faults.fading_sigma_db = args.getd("sigma");
  ro.time_budget_s = args.getd("budget");
  ro.threads = util::resolve_threads(args.geti("threads"));
  const auto robust = explorer.explore_robust(ro);

  faults::FaultModelConfig fc = ro.faults;
  const faults::FaultModel fm(*sc->tmpl, sc->spec, fc);
  faults::CampaignOptions copts;
  copts.threads = ro.threads;
  const auto before = faults::CampaignRunner(*sc->tmpl, sc->spec, copts)
                          .run(baseline.architecture, fm.scenarios(baseline.architecture));

  util::Table loop({"Design", "Pass rate (%)", "$ cost", "Routes", "Time (s)"});
  loop.add_row({"baseline", util::fmt_double(100.0 * before.pass_rate(), 1),
                util::fmt_double(baseline.architecture.total_cost_usd, 0),
                std::to_string(baseline.architecture.routes.size()),
                util::fmt_double(baseline.total_time_s, 1)});
  if (robust.best.has_solution()) {
    loop.add_row({robust.robust ? "repaired (robust)" : "repaired (best effort)",
                  util::fmt_double(100.0 * robust.report.pass_rate(), 1),
                  util::fmt_double(robust.best.architecture.total_cost_usd, 0),
                  std::to_string(robust.best.architecture.routes.size()),
                  util::fmt_double(robust.total_time_s, 1)});
  }
  std::printf("Repair loop (%d iterations, %d hardenings)\n%s\n", robust.iterations,
              robust.hardenings_applied, loop.to_string().c_str());
  return 0;
}
