// Portfolio race harness: tabu+MILP portfolio vs MILP-only exploration on
// the table3 scalability family.
//
// For each instance the harness runs
//   (a) MILP-only: Explorer::explore (encode -> fixed-routing warm start ->
//       branch-and-bound). Time-to-first-incumbent is measured in explorer
//       wall clock: total wall minus the solver's own wall plus the first
//       incumbent-timeline entry — i.e. encode + warm-start probe + solve
//       time until the first accepted incumbent;
//   (b) the PortfolioRunner, whose rung 0 runs the tabu member alone with a
//       small per-evaluation node budget, so its first evaluation (the same
//       fixed-routing restriction the explorer probes) stops at its first
//       integral point instead of polishing toward the probe's gap target.
//
// Gates (any failure exits non-zero):
//   - equal optimum: when both sides certify, objectives must match to
//     1e-6 relative;
//   - first incumbent: the portfolio's must be strictly earlier than the
//     MILP-only side's on every instance that has one;
//   - thread sweep: portfolio canonical reports byte-identical across
//     1/2/4/8 worker threads. The sweep runs under node budgets only (no
//     wall-clock limits anywhere) — a time limit that fires mid-search
//     stops the members at machine-load-dependent points, which is exactly
//     the nondeterminism the canonical signature is meant to catch.
//
// Modes:
//   (default)     full sweep incl. the >= 80x30 instances
//   --smoke       small instances only (CI); same gates
//   --json        one strict-JSON row per instance on stdout
//   --trace FILE  Chrome trace of the runs
//   --time-limit  per-solve / per-rung MILP time limit (s)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/meta/portfolio.h"
#include "core/workloads/scenarios.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

struct Case {
  std::string name;
  int total_nodes = 0;
  int end_devices = 0;
  int route_replicas = 1;
};

std::vector<Case> build_cases(bool smoke) {
  std::vector<Case> out;
  out.push_back({"race-40x15", 40, 15, 1});
  out.push_back({"race-60x22", 60, 22, 1});
  if (!smoke) {
    out.push_back({"race-80x30", 80, 30, 1});
    out.push_back({"race-80x30-r2", 80, 30, 2});
    out.push_back({"race-100x40", 100, 40, 1});
  }
  return out;
}

bool objectives_match(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

/// Race configuration: anytime, bounded by `time_limit_s` TOTAL (the runner
/// spreads one deadline across all rungs). Tabu evaluations are kept cheap —
/// a 16-node restricted solve is enough for the dive heuristic to hand back
/// an integral point, which is all an incumbent race needs.
meta::PortfolioOptions portfolio_options(double time_limit_s, int threads) {
  meta::PortfolioOptions po;
  po.threads = threads;
  po.solver.time_limit_s = time_limit_s;
  po.solver.exec.token = util::exec::interrupt_token();
  po.max_rungs = 8;
  po.tabu_iterations_per_rung = 4;
  po.tabu.neighborhood = 8;
  po.tabu.eval_node_limit = 8;
  po.tabu.eval_rel_gap = 0.01;  // evals are heuristic scores, 1% is plenty
  po.tabu.eval_time_limit_s = std::min(2.0, time_limit_s);
  return po;
}

/// Sweep configuration: fully deterministic. Every budget is a node or
/// iteration count; wall-clock limits are pushed out of reach so the result
/// bytes cannot depend on machine load or thread count.
meta::PortfolioOptions sweep_options(int threads) {
  meta::PortfolioOptions po;
  po.threads = threads;
  po.solver.time_limit_s = 1e9;
  po.solver.exec.token = util::exec::interrupt_token();
  po.max_rungs = 2;
  po.milp_base_nodes = 64;
  po.tabu_iterations_per_rung = 2;
  po.tabu.neighborhood = 4;
  po.tabu.eval_node_limit = 8;
  po.tabu.eval_time_limit_s = 1e9;
  return po;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "60"},
                    {"json", "0"},
                    {"trace", ""},
                    {"smoke", "0"},
                    {"threads", "2"}});
  util::exec::install_interrupt_handlers();

  const bool smoke = args.getb("smoke");
  const double tl = args.getd("time-limit");
  const int threads = args.geti("threads");

  struct TraceDump {
    std::string path;
    ~TraceDump() {
      if (path.empty()) return;
      if (util::obs::TraceRecorder::global().write_chrome_trace(path)) {
        std::printf("trace written: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "FAIL: could not write trace %s\n", path.c_str());
      }
    }
  } trace_dump{args.gets("trace")};
  if (!trace_dump.path.empty()) util::obs::TraceRecorder::global().set_enabled(true);

  util::Table table({"Instance", "Obj", "MILP 1st inc (s)", "Portfolio 1st inc (s)",
                     "MILP proof (s)", "Portfolio proof (s)", "1st winner", "Winner", "Rungs"});
  bool ok = true;

  for (const auto& c : build_cases(smoke)) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = c.total_nodes;
    cfg.end_devices = c.end_devices;
    cfg.route_replicas = c.route_replicas;
    const auto sc = workloads::make_scalable(cfg);
    const Explorer ex(*sc->tmpl, sc->spec);

    // (a) MILP-only reference.
    milp::SolveOptions so;
    so.time_limit_s = tl;
    so.exec.token = util::exec::interrupt_token();
    util::Stopwatch milp_clock;
    const ExplorationResult ref = ex.explore({}, so);
    const double milp_wall = milp_clock.seconds();
    double milp_first = -1.0;
    if (!ref.solve_stats.incumbent_timeline.empty()) {
      // Wall time until the explorer's first incumbent: everything before
      // the solver ran (encode + fixed-routing probe + setup) plus the
      // solve-relative timestamp of the first accepted incumbent.
      milp_first = (milp_wall - ref.solve_stats.time_s) +
                   ref.solve_stats.incumbent_timeline[0].time_s;
    }
    const double milp_proof =
        ref.status == milp::SolveStatus::kOptimal ? milp_wall : -1.0;

    // (b) Portfolio.
    const meta::PortfolioRunner runner(ex);
    const meta::PortfolioResult port = runner.run(portfolio_options(tl, threads));

    if (util::exec::interrupt_token().cancelled()) {
      std::fprintf(stderr, "interrupted (signal %d), stopping sweep\n",
                   util::exec::interrupt_signal());
      break;
    }

    // Gate: equal optimum when both sides certified.
    if (ref.status == milp::SolveStatus::kOptimal &&
        port.status == milp::SolveStatus::kOptimal &&
        !objectives_match(ref.objective, port.objective)) {
      std::fprintf(stderr, "FAIL %s: optimum mismatch — MILP-only %.9g, portfolio %.9g\n",
                   c.name.c_str(), ref.objective, port.objective);
      ok = false;
    }
    // Gate: portfolio never reports a worse incumbent than it could prove.
    if (port.has_solution() && port.bound > -milp::kInf &&
        port.objective < port.bound - 1e-6 * std::max(1.0, std::abs(port.bound))) {
      std::fprintf(stderr, "FAIL %s: incumbent %.9g below proven bound %.9g\n", c.name.c_str(),
                   port.objective, port.bound);
      ok = false;
    }
    // Gate: strictly earlier first incumbent (the tentpole claim).
    if (milp_first >= 0.0 && port.first_incumbent_s >= 0.0 &&
        port.first_incumbent_s >= milp_first) {
      std::fprintf(stderr,
                   "FAIL %s: portfolio first incumbent %.3fs not earlier than MILP-only %.3fs\n",
                   c.name.c_str(), port.first_incumbent_s, milp_first);
      ok = false;
    }
    if (!port.has_solution() && ref.has_solution()) {
      std::fprintf(stderr, "FAIL %s: portfolio found no incumbent but MILP-only did\n",
                   c.name.c_str());
      ok = false;
    }

    // Gate: byte-identical canonical reports across the thread sweep.
    std::string sweep_sig;
    for (const int t : {1, 2, 4, 8}) {
      const meta::PortfolioResult r = runner.run(sweep_options(t));
      if (util::exec::interrupt_token().cancelled()) break;
      const std::string sig = r.canonical_signature();
      if (sweep_sig.empty()) {
        sweep_sig = sig;
      } else if (sig != sweep_sig) {
        std::fprintf(stderr, "FAIL %s: canonical report diverges at %d threads\n", c.name.c_str(),
                     t);
        ok = false;
      }
    }

    table.add_row({c.name,
                   port.has_solution() ? util::fmt_double(port.objective, 3) : "-",
                   milp_first >= 0.0 ? util::fmt_double(milp_first, 3) : "-",
                   port.first_incumbent_s >= 0.0 ? util::fmt_double(port.first_incumbent_s, 3) : "-",
                   milp_proof >= 0.0 ? util::fmt_double(milp_proof, 3) : "-",
                   port.time_to_proof_s >= 0.0 ? util::fmt_double(port.time_to_proof_s, 3) : "-",
                   port.first_member, port.winner, std::to_string(port.rungs)});

    if (args.getb("json")) {
      util::obs::JsonWriter w;
      w.begin_object();
      w.field("instance", c.name);
      w.number_field("milp_first_incumbent_s", milp_first);
      w.number_field("milp_proof_s", milp_proof);
      w.number_field("milp_objective", ref.has_solution() ? ref.objective : milp::kInf);
      w.key("portfolio").raw(port.to_json());
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    }
  }

  bench::print_table("Portfolio race: tabu+MILP vs MILP-only (table3 family)", table);
  std::printf(ok ? "portfolio_race: PASS\n" : "portfolio_race: FAIL\n");
  return ok ? 0 : 1;
}
