// Reproduces Table 3 of the paper: constraint counts and solver times of
// the approximate path encoding (Algorithm 1, K*=10) versus the exact full
// enumeration, across growing template sizes.
//
// Like the paper ("measured (or estimated, for larger instances)"), the
// full encoding is materialized only while affordable and analytically
// estimated beyond that; the full MILP is *solved* only on the smallest
// instance — larger ones carry the paper's TO marker. The headline shape:
// approx constraint counts sit orders of magnitude below full, and approx
// solve times stay minutes while full times out almost immediately.
//
// A second A/B compares the approx encoding against its lazy-separation
// variant (EncoderOptions::lazy_separation): the linking and disjointness
// families stay out of the model until the branch-and-bound separates them
// on demand, so the encoded row count drops further at identical optima.
// The bench exits non-zero if any lazy optimum diverges from upfront.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "45"},
                    {"full-time-limit", "120"},
                    {"gap", "0.05"},
                    {"kstar", "10"},
                    {"full-build-max-nodes", "60"},
                    {"full-solve-max-nodes", "35"},
                    {"paper", "0"},
                    {"threads", "1"}});  // encoder candidate-generation workers; 0 = all cores

  std::vector<std::pair<int, int>> sizes = {{30, 10}, {50, 20}, {80, 30}, {120, 50}};
  if (args.getb("paper")) {
    sizes = {{50, 20},  {100, 20}, {100, 50}, {100, 75}, {250, 50},
             {250, 100}, {250, 200}, {500, 50}, {500, 100}, {500, 200}};
  }

  util::Table table({"#Nodes", "#End devices", "#Constraints full", "#Constraints approx",
                     "Time full (s)", "Time approx (s)"});
  util::Table lazy_table({"#Nodes", "#End devices", "Rows upfront", "Rows lazy", "Omitted",
                          "Cuts activated", "Nodes up/lazy", "Time up/lazy (s)"});
  bool ok = true;
  double last_row_ratio = 0.0;

  for (const auto& [nodes, devices] : sizes) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = nodes;
    cfg.end_devices = devices;
    const auto sc = workloads::make_scalable(cfg);

    // --- Approximate encoding: build and solve.
    EncoderOptions approx;
    approx.k_star = args.geti("kstar");
    approx.threads = util::resolve_threads(args.geti("threads"));
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = args.getd("gap");
    Explorer ex(*sc->tmpl, sc->spec);
    const auto ares = ex.explore(approx, so);
    const std::string approx_cons = std::to_string(ares.encode_stats.num_constrs);
    const std::string approx_time = ares.has_solution()
                                        ? util::fmt_double(ares.total_time_s, 1)
                                        : std::string(milp::to_string(ares.status));

    // --- Lazy separation A/B: same options, skeleton-only encode, rows
    // recovered on demand. Optima must not move.
    EncoderOptions lazy = approx;
    lazy.lazy_separation = true;
    const auto lres = ex.explore(lazy, so);
    if (ares.has_solution() != lres.has_solution() ||
        (ares.has_solution() &&
         std::abs(ares.objective - lres.objective) >
             1e-6 * std::max(1.0, std::abs(ares.objective)))) {
      std::fprintf(stderr, "FAIL %dx%d: lazy optimum diverges (upfront %.9g vs lazy %.9g)\n",
                   nodes, devices, ares.has_solution() ? ares.objective : milp::kInf,
                   lres.has_solution() ? lres.objective : milp::kInf);
      ok = false;
    }
    last_row_ratio = static_cast<double>(ares.encode_stats.num_constrs) /
                     static_cast<double>(std::max(1, lres.encode_stats.num_constrs));
    lazy_table.add_row(
        {std::to_string(nodes), std::to_string(devices),
         std::to_string(ares.encode_stats.num_constrs),
         std::to_string(lres.encode_stats.num_constrs),
         std::to_string(lres.encode_stats.lazy_rows_omitted),
         std::to_string(lres.solve_stats.cuts_lp_rows),
         std::to_string(ares.solve_stats.nodes) + "/" + std::to_string(lres.solve_stats.nodes),
         util::fmt_double(ares.total_time_s, 1) + "/" + util::fmt_double(lres.total_time_s, 1)});

    // --- Full encoding: count (measured or estimated), solve if tiny.
    EncoderOptions full;
    full.mode = EncoderOptions::PathMode::kFull;
    Encoder fenc(*sc->tmpl, sc->spec, full);
    std::string full_cons;
    if (nodes <= args.geti("full-build-max-nodes")) {
      full_cons = std::to_string(fenc.encode().stats.num_constrs);
    } else {
      full_cons = "~" + std::to_string(fenc.estimate_full_stats().num_constrs);
    }
    std::string full_time = "TO";
    if (nodes <= args.geti("full-solve-max-nodes")) {
      milp::SolveOptions fso = so;
      fso.time_limit_s = args.getd("full-time-limit");
      const auto fres = ex.explore(full, fso);
      full_time = fres.status == milp::SolveStatus::kOptimal
                      ? util::fmt_double(fres.total_time_s, 1)
                      : "TO(" + util::fmt_double(fres.total_time_s, 0) + "s)";
    }

    table.add_row({std::to_string(nodes), std::to_string(devices), full_cons, approx_cons,
                   full_time, approx_time});
    std::fflush(stdout);
  }

  std::printf("K*=%d; 'TO' marks instances past the timeout, '~' analytic estimates\n",
              args.geti("kstar"));
  bench::print_table("Table 3: problem size and time, full vs approximate encoding", table);
  bench::print_table("Lazy separation A/B: encoded rows upfront vs separated on demand",
                     lazy_table);
  std::printf("row reduction at largest instance: %.2fx fewer encoded rows with lazy separation\n",
              last_row_ratio);
  return ok ? 0 : 1;
}
