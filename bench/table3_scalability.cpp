// Reproduces Table 3 of the paper: constraint counts and solver times of
// the approximate path encoding (Algorithm 1, K*=10) versus the exact full
// enumeration, across growing template sizes.
//
// Like the paper ("measured (or estimated, for larger instances)"), the
// full encoding is materialized only while affordable and analytically
// estimated beyond that; the full MILP is *solved* only on the smallest
// instance — larger ones carry the paper's TO marker. The headline shape:
// approx constraint counts sit orders of magnitude below full, and approx
// solve times stay minutes while full times out almost immediately.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "45"},
                    {"full-time-limit", "120"},
                    {"gap", "0.05"},
                    {"kstar", "10"},
                    {"full-build-max-nodes", "60"},
                    {"full-solve-max-nodes", "35"},
                    {"paper", "0"},
                    {"threads", "1"}});  // encoder candidate-generation workers; 0 = all cores

  std::vector<std::pair<int, int>> sizes = {{30, 10}, {50, 20}, {80, 30}, {120, 50}};
  if (args.getb("paper")) {
    sizes = {{50, 20},  {100, 20}, {100, 50}, {100, 75}, {250, 50},
             {250, 100}, {250, 200}, {500, 50}, {500, 100}, {500, 200}};
  }

  util::Table table({"#Nodes", "#End devices", "#Constraints full", "#Constraints approx",
                     "Time full (s)", "Time approx (s)"});

  for (const auto& [nodes, devices] : sizes) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = nodes;
    cfg.end_devices = devices;
    const auto sc = workloads::make_scalable(cfg);

    // --- Approximate encoding: build and solve.
    EncoderOptions approx;
    approx.k_star = args.geti("kstar");
    approx.threads = util::resolve_threads(args.geti("threads"));
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = args.getd("gap");
    Explorer ex(*sc->tmpl, sc->spec);
    const auto ares = ex.explore(approx, so);
    const std::string approx_cons = std::to_string(ares.encode_stats.num_constrs);
    const std::string approx_time = ares.has_solution()
                                        ? util::fmt_double(ares.total_time_s, 1)
                                        : std::string(milp::to_string(ares.status));

    // --- Full encoding: count (measured or estimated), solve if tiny.
    EncoderOptions full;
    full.mode = EncoderOptions::PathMode::kFull;
    Encoder fenc(*sc->tmpl, sc->spec, full);
    std::string full_cons;
    if (nodes <= args.geti("full-build-max-nodes")) {
      full_cons = std::to_string(fenc.encode().stats.num_constrs);
    } else {
      full_cons = "~" + std::to_string(fenc.estimate_full_stats().num_constrs);
    }
    std::string full_time = "TO";
    if (nodes <= args.geti("full-solve-max-nodes")) {
      milp::SolveOptions fso = so;
      fso.time_limit_s = args.getd("full-time-limit");
      const auto fres = ex.explore(full, fso);
      full_time = fres.status == milp::SolveStatus::kOptimal
                      ? util::fmt_double(fres.total_time_s, 1)
                      : "TO(" + util::fmt_double(fres.total_time_s, 0) + "s)";
    }

    table.add_row({std::to_string(nodes), std::to_string(devices), full_cons, approx_cons,
                   full_time, approx_time});
    std::fflush(stdout);
  }

  std::printf("K*=%d; 'TO' marks instances past the timeout, '~' analytic estimates\n",
              args.geti("kstar"));
  bench::print_table("Table 3: problem size and time, full vs approximate encoding", table);
  return 0;
}
