// Ablation A1 (DESIGN.md): the value of DisconnectMinDisjointPath in
// Algorithm 1. With the disconnect step, every replica group is generated
// on a graph purged of the previous group's most-overlapping path, so
// edge-disjoint replica pairs exist among the candidates by construction;
// without it, Yen returns near-identical batches and the conflict
// constraints can make the MILP infeasible or force costlier detours.
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/encode/encoder.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "graph/digraph.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

/// Fraction of routes for which at least one edge-disjoint candidate pair
/// exists across replica groups.
double disjoint_coverage(const EncodedProblem& ep, size_t num_routes) {
  int ok = 0;
  for (size_t ri = 0; ri < num_routes; ++ri) {
    bool found = false;
    for (size_t a = 0; a < ep.candidates.size() && !found; ++a) {
      for (size_t b = a + 1; b < ep.candidates.size() && !found; ++b) {
        const auto& ca = ep.candidates[a];
        const auto& cb = ep.candidates[b];
        if (ca.route_index != static_cast<int>(ri) || cb.route_index != static_cast<int>(ri)) {
          continue;
        }
        if (ca.replica != cb.replica && graph::shared_edges(ca.path, cb.path) == 0) {
          found = true;
        }
      }
    }
    if (found) ++ok;
  }
  return num_routes == 0 ? 1.0 : static_cast<double>(ok) / static_cast<double>(num_routes);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"nodes", "50"}, {"devices", "15"}, {"kstar", "6"}, {"time-limit", "45"}});

  workloads::ScalableConfig cfg;
  cfg.total_nodes = args.geti("nodes");
  cfg.end_devices = args.geti("devices");
  cfg.route_replicas = 2;  // disjointness only matters with replicas
  const auto sc = workloads::make_scalable(cfg);

  util::Table table({"Strategy", "Routes w/ disjoint pair", "Status", "$ cost", "Time (s)"});
  for (const auto strategy : {EncoderOptions::DisjointStrategy::kDisconnectMinDisjoint,
                              EncoderOptions::DisjointStrategy::kNone}) {
    EncoderOptions eo;
    eo.k_star = args.geti("kstar");
    eo.disjoint_strategy = strategy;

    Encoder enc(*sc->tmpl, sc->spec, eo);
    const auto ep = enc.encode();
    const double cov = disjoint_coverage(ep, sc->spec.routes.size());

    Explorer ex(*sc->tmpl, sc->spec);
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = 0.03;
    const auto res = ex.explore(eo, so);

    table.add_row({strategy == EncoderOptions::DisjointStrategy::kDisconnectMinDisjoint
                       ? "disconnect-min-disjoint"
                       : "none (ablated)",
                   util::fmt_double(100.0 * cov, 0) + "%",
                   milp::to_string(res.status),
                   res.has_solution() ? util::fmt_double(res.architecture.total_cost_usd, 0) : "-",
                   util::fmt_double(res.total_time_s, 1)});
  }
  bench::print_table("Ablation A1: DisconnectMinDisjointPath in Algorithm 1", table);
  return 0;
}
