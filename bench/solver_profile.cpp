// Solver telemetry and regression harness for the self-contained MILP core.
//
// Runs a fixed, deterministic family of instances — pure MILPs (knapsack,
// set cover, assignment, integer boxes) plus Table-3-style wireless-design
// encodings — through milp::solve and reports the full SolveStats JSON per
// instance (nodes, LP iterations, warm-start hit rate, propagation fixings,
// incumbent timeline).
//
// Modes:
//   (default)          A/B-compares the production solver configuration
//                      against the legacy one (most-fractional branching,
//                      no node propagation) and prints per-instance rows
//                      plus geometric-mean reduction factors. Exits
//                      non-zero if any instance's optima disagree.
//   --smoke            Runs the quick subset with the current configuration
//                      and compares nodes / LP iterations / objective
//                      against a checked-in baseline JSON; exits non-zero
//                      on a > 25% regression (CI tier-1 runs this).
//   --write-baseline   Regenerates the baseline file at --baseline.
//   --time-budget S    Anytime/budget mode: runs the smoke subset under one
//                      shared wall-clock deadline of S seconds (plus the
//                      process-wide SIGINT/SIGTERM token) and prints one
//                      strict-JSON row per solve plus a final summary row.
//                      No baselines or A/B gates: partial results are the
//                      point. Always exits 0 unless a solve crashes.
//   --simd-ab          Dispatch-level A/B: solves the smoke subset twice,
//                      forced scalar then forced widest-supported ISA, and
//                      enforces the bit-identity contract (objective, node
//                      count, LP iterations and every solution coordinate
//                      byte-equal). Prints per-instance time ratios plus a
//                      geomean; exits non-zero on any divergence.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/encode/encoder.h"
#include "core/encode/separation.h"
#include "core/workloads/scenarios.h"
#include "milp/solver.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/simd/simd.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

struct Instance {
  std::string name;
  milp::Model model;
  bool smoke = true;  ///< included in the --smoke subset
};

milp::Model make_knapsack(uint32_t seed, int n, int rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  std::uniform_int_distribution<int> p(1, 20);
  milp::Model m;
  std::vector<milp::Var> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < rows; ++r) {
    milp::LinExpr e;
    int total = 0;
    for (int i = 0; i < n; ++i) {
      const int wi = w(rng);
      total += wi;
      e += static_cast<double>(wi) * milp::LinExpr(xs[static_cast<size_t>(i)]);
    }
    m.add_le(std::move(e), std::floor(0.4 * total));
  }
  milp::LinExpr obj;
  for (int i = 0; i < n; ++i) obj += -static_cast<double>(p(rng)) * milp::LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  return m;
}

milp::Model make_set_cover(uint32_t seed, int n, int rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cost(1, 10);
  milp::Model m;
  std::vector<milp::Var> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < rows; ++r) {
    milp::LinExpr e;
    int members = 0;
    for (int i = 0; i < n; ++i) {
      if (rng() % 4 == 0) {
        e += milp::LinExpr(xs[static_cast<size_t>(i)]);
        ++members;
      }
    }
    if (members < 2) e += milp::LinExpr(xs[static_cast<size_t>(r % n)]);
    m.add_ge(std::move(e), 1.0);
  }
  milp::LinExpr obj;
  for (int i = 0; i < n; ++i) obj += static_cast<double>(cost(rng)) * milp::LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  return m;
}

milp::Model make_assignment(uint32_t seed, int n) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> cost(1, 50);
  milp::Model m;
  std::vector<std::vector<milp::Var>> a(static_cast<size_t>(n));
  milp::LinExpr obj;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<size_t>(i)].push_back(m.add_binary("a"));
      obj += static_cast<double>(cost(rng)) * milp::LinExpr(a[static_cast<size_t>(i)].back());
    }
  }
  for (int i = 0; i < n; ++i) {
    milp::LinExpr row, col;
    for (int j = 0; j < n; ++j) {
      row += milp::LinExpr(a[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      col += milp::LinExpr(a[static_cast<size_t>(j)][static_cast<size_t>(i)]);
    }
    m.add_eq(std::move(row), 1.0);
    m.add_eq(std::move(col), 1.0);
  }
  m.minimize(obj);
  return m;
}

milp::Model make_int_box(uint32_t seed, int n, int rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coef(-5, 5);
  milp::Model m;
  std::vector<milp::Var> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(m.add_integer("x", 0, 6));
  for (int r = 0; r < rows; ++r) {
    milp::LinExpr e;
    bool nonzero = false;
    for (int i = 0; i < n; ++i) {
      const int c = coef(rng);
      if (c != 0) {
        e.add_term(xs[static_cast<size_t>(i)], c);
        nonzero = true;
      }
    }
    if (!nonzero) continue;
    m.add_le(std::move(e), 8.0 + static_cast<double>(rng() % 10));
  }
  milp::LinExpr obj;
  for (int i = 0; i < n; ++i) obj += static_cast<double>(coef(rng)) * milp::LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  return m;
}

milp::Model make_table3(int nodes, int devices, int kstar) {
  workloads::ScalableConfig cfg;
  cfg.total_nodes = nodes;
  cfg.end_devices = devices;
  const auto sc = workloads::make_scalable(cfg);
  EncoderOptions eopts;
  eopts.k_star = kstar;
  Encoder enc(*sc->tmpl, sc->spec, eopts);
  return enc.encode().model;
}

std::vector<Instance> build_family(int kstar, bool smoke_only) {
  std::vector<Instance> out;
  out.push_back({"knapsack-25x5", make_knapsack(11, 25, 5), true});
  out.push_back({"knapsack-35x8", make_knapsack(12, 35, 8), true});
  out.push_back({"setcover-30x24", make_set_cover(21, 30, 24), true});
  out.push_back({"setcover-40x32", make_set_cover(22, 40, 32), true});
  out.push_back({"assignment-8", make_assignment(31, 8), true});
  out.push_back({"intbox-10x8", make_int_box(41, 10, 8), true});
  out.push_back({"table3-30x10", make_table3(30, 10, kstar), true});
  out.push_back({"table3-50x20", make_table3(50, 20, kstar), true});
  if (!smoke_only) {
    out.push_back({"knapsack-45x10", make_knapsack(13, 45, 10), false});
    out.push_back({"assignment-10", make_assignment(32, 10), false});
    out.push_back({"table3-80x30", make_table3(80, 30, kstar), false});
  }
  return out;
}

struct BaselineEntry {
  std::string name;
  double objective = 0.0;
  long nodes = 0;
  long lp_iterations = 0;
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    char name[128] = {0};
    BaselineEntry e;
    if (std::sscanf(line.c_str(), "  {\"name\": \"%127[^\"]\", \"objective\": %lf, \"nodes\": %ld, \"lp_iterations\": %ld",
                    name, &e.objective, &e.nodes, &e.lp_iterations) == 4) {
      e.name = name;
      out.push_back(e);
    }
  }
  return out;
}

void write_baseline(const std::string& path, const std::vector<BaselineEntry>& entries) {
  // One entry per line (the loader is line-oriented), each line produced by
  // the obs writer so the file parses strictly and is locale-immune.
  std::ofstream outf(path);
  outf << "{\"instances\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    wnet::util::obs::JsonWriter w;
    w.begin_object();
    w.field("name", entries[i].name);
    w.field("objective", entries[i].objective);
    w.field("nodes", entries[i].nodes);
    w.field("lp_iterations", entries[i].lp_iterations);
    w.end_object();
    outf << "  " << w.take() << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  outf << "]}\n";
}

bool objectives_match(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

bool bits_equal(double a, double b) { return std::memcmp(&a, &b, sizeof(a)) == 0; }

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "120"},
                    {"kstar", "6"},
                    {"json", "0"},
                    {"trace", ""},
                    {"smoke", "0"},
                    {"write-baseline", "0"},
                    {"baseline", "bench/solver_profile_baseline.json"},
                    {"time-budget", "0"},
                    {"simd-ab", "0"}});

  // Ctrl-C / SIGTERM trip the process-wide cancellation token instead of
  // killing the process: in-flight solves return their incumbents and the
  // budget-mode summary row still gets written.
  util::exec::install_interrupt_handlers();

  const bool smoke = args.getb("smoke");
  const bool write = args.getb("write-baseline");
  const bool simd_ab = args.getb("simd-ab");
  const double budget_s = args.getd("time-budget");

  // --trace out.json: record spans/counters for every solve and dump a
  // Chrome trace (chrome://tracing, ui.perfetto.dev) on any exit path.
  struct TraceDump {
    std::string path;
    ~TraceDump() {
      if (path.empty()) return;
      if (util::obs::TraceRecorder::global().write_chrome_trace(path)) {
        std::printf("trace written: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "FAIL: could not write trace %s\n", path.c_str());
      }
    }
  } trace_dump{args.gets("trace")};
  if (!trace_dump.path.empty()) util::obs::TraceRecorder::global().set_enabled(true);

  milp::SolveOptions current;
  current.time_limit_s = args.getd("time-limit");
  milp::SolveOptions legacy = current;
  legacy.pseudocost_branching = false;
  legacy.node_propagation = false;

  auto family = build_family(args.geti("kstar"),
                             /*smoke_only=*/smoke || write || simd_ab || budget_s > 0.0);

  if (simd_ab) {
    // Dispatch-level A/B. Every solve is repeated under forced-scalar and
    // forced-widest dispatch; the kernel determinism contract promises the
    // whole branch-and-bound trajectory is identical, so everything except
    // wall time must match to the byte.
    namespace simd = util::simd;
    const simd::Level widest = simd::widest_supported();
    std::printf("simd-ab: scalar vs %s\n", simd::level_name(widest));
    if (widest == simd::Level::kScalar) {
      std::printf("simd-ab: host has no vector ISA; nothing to compare\n");
      return 0;
    }
    util::Table t({"Instance", "Obj", "Nodes", "LP iters", "Time scalar (s)",
                   std::string("Time ") + simd::level_name(widest) + " (s)", "Ratio"});
    double log_time_ratio = 0.0;
    int compared = 0;
    double t3_log_time_ratio = 0.0;
    int t3_compared = 0;
    bool ab_ok = true;
    for (const auto& inst : family) {
      milp::MipResult sres, vres;
      {
        const simd::ScopedLevel forced(simd::Level::kScalar);
        sres = milp::solve(inst.model, current);
      }
      {
        const simd::ScopedLevel forced(widest);
        vres = milp::solve(inst.model, current);
      }
      bool same = sres.status == vres.status &&
                  bits_equal(sres.objective, vres.objective) &&
                  bits_equal(sres.bound, vres.bound) &&
                  sres.stats.nodes == vres.stats.nodes &&
                  sres.stats.lp_iterations == vres.stats.lp_iterations &&
                  sres.x.size() == vres.x.size();
      if (same) {
        for (size_t i = 0; i < sres.x.size(); ++i) {
          if (!bits_equal(sres.x[i], vres.x[i])) same = false;
        }
      }
      if (!same) {
        std::fprintf(stderr,
                     "FAIL %s: dispatch levels diverge (scalar obj %.17g nodes %ld "
                     "iters %ld vs %s obj %.17g nodes %ld iters %ld)\n",
                     inst.name.c_str(), sres.objective, sres.stats.nodes,
                     sres.stats.lp_iterations, simd::level_name(widest), vres.objective,
                     vres.stats.nodes, vres.stats.lp_iterations);
        ab_ok = false;
      }
      const double ratio =
          std::max(1e-4, sres.stats.time_s) / std::max(1e-4, vres.stats.time_s);
      log_time_ratio += std::log(ratio);
      ++compared;
      if (inst.name.rfind("table3", 0) == 0) {
        t3_log_time_ratio += std::log(ratio);
        ++t3_compared;
      }
      t.add_row({inst.name, util::fmt_double(sres.objective, 3),
                 std::to_string(sres.stats.nodes),
                 std::to_string(sres.stats.lp_iterations),
                 util::fmt_double(sres.stats.time_s, 3),
                 util::fmt_double(vres.stats.time_s, 3), util::fmt_double(ratio, 2)});
    }
    bench::print_table("SIMD dispatch A/B: forced scalar vs forced widest", t);
    if (compared > 0) {
      std::printf("geomean time ratio (scalar/%s), %d instances: %.2fx\n",
                  simd::level_name(widest), compared,
                  std::exp(log_time_ratio / compared));
    }
    if (t3_compared > 0) {
      std::printf("geomean time ratio, table3 family (%d instances): %.2fx\n",
                  t3_compared, std::exp(t3_log_time_ratio / t3_compared));
    }
    std::printf(ab_ok ? "simd-ab: PASS\n" : "simd-ab: FAIL\n");
    return ab_ok ? 0 : 1;
  }

  if (budget_s > 0.0) {
    // Budget mode. The deadline starts *after* the family is built so the
    // instance set is deterministic; every solve shares the same ExecControl
    // and gets whatever wall clock remains. A solve cut short still reports
    // a strict-JSON row with its termination reason, bound and gap.
    util::exec::ExecControl ctl;
    ctl.deadline = util::exec::Deadline::after(budget_s);
    ctl.token = util::exec::interrupt_token();
    milp::SolveOptions bopts = current;
    bopts.exec = ctl;
    int attempted = 0;
    const char* last_termination = "completed";
    for (const auto& inst : family) {
      if (ctl.stopped()) break;
      const milp::MipResult res = milp::solve(inst.model, bopts);
      last_termination = util::exec::to_string(res.stats.termination);
      ++attempted;
      util::obs::JsonWriter w;
      w.begin_object();
      w.field("instance", inst.name);
      w.key("solver").raw(res.stats.to_json());
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    }
    util::obs::JsonWriter w;
    w.begin_object();
    w.field("mode", "budget");
    w.number_field("time_budget_s", budget_s);
    w.field("instances_total", static_cast<long>(family.size()));
    w.field("instances_attempted", attempted);
    w.field("last_termination", last_termination);
    w.field("interrupted", util::exec::interrupt_token().cancelled());
    w.field("interrupt_signal", util::exec::interrupt_signal());
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    return 0;
  }

  util::Table table({"Instance", "Obj", "Nodes (new)", "LP iters (new)", "Nodes (old)",
                     "LP iters (old)", "Time new (s)", "Time old (s)"});
  std::vector<BaselineEntry> measured;
  double log_iter_ratio = 0.0;
  double log_node_ratio = 0.0;
  double log_time_ratio = 0.0;
  int compared = 0;
  // Same sums restricted to the table3-* instances — the paper's workload
  // family, where the solver upgrades are expected to pay off most.
  double t3_log_iter_ratio = 0.0;
  double t3_log_time_ratio = 0.0;
  int t3_compared = 0;
  bool ok = true;

  for (const auto& inst : family) {
    const milp::MipResult cur = milp::solve(inst.model, current);
    if (!cur.has_solution()) {
      std::fprintf(stderr, "FAIL %s: no solution (%s)\n", inst.name.c_str(),
                   milp::to_string(cur.status));
      ok = false;
      continue;
    }
    measured.push_back({inst.name, cur.objective, cur.stats.nodes, cur.stats.lp_iterations});
    if (args.getb("json")) {
      util::obs::JsonWriter w;
      w.begin_object();
      w.field("instance", inst.name);
      w.key("solver").raw(cur.stats.to_json());
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    }

    if (smoke || write) continue;

    // --- A/B against the legacy configuration.
    const milp::MipResult old = milp::solve(inst.model, legacy);
    const bool both_proved = cur.status == milp::SolveStatus::kOptimal &&
                             old.status == milp::SolveStatus::kOptimal;
    if (both_proved) {
      // Optima must agree exactly; counts are work-to-completion and enter
      // the geometric means.
      if (!objectives_match(cur.objective, old.objective)) {
        std::fprintf(stderr, "FAIL %s: optima disagree (new %.9g vs old %.9g)\n",
                     inst.name.c_str(), cur.objective, old.objective);
        ok = false;
      }
      log_iter_ratio += std::log(static_cast<double>(std::max(1L, old.stats.lp_iterations)) /
                                 static_cast<double>(std::max(1L, cur.stats.lp_iterations)));
      log_node_ratio += std::log(static_cast<double>(std::max(1L, old.stats.nodes)) /
                                 static_cast<double>(std::max(1L, cur.stats.nodes)));
      log_time_ratio += std::log(std::max(1e-4, old.stats.time_s) / std::max(1e-4, cur.stats.time_s));
      ++compared;
      if (inst.name.rfind("table3", 0) == 0) {
        t3_log_iter_ratio += std::log(static_cast<double>(std::max(1L, old.stats.lp_iterations)) /
                                      static_cast<double>(std::max(1L, cur.stats.lp_iterations)));
        t3_log_time_ratio +=
            std::log(std::max(1e-4, old.stats.time_s) / std::max(1e-4, cur.stats.time_s));
        ++t3_compared;
      }
    } else {
      // A side that hit the time limit reports counts that measure
      // iteration *rate*, not work to completion, so the row is marked TO
      // (as in the paper's tables) and kept out of the geomeans. The new
      // configuration must still be at least as good an anytime solver.
      if (old.has_solution() &&
          (!cur.has_solution() || cur.objective > old.objective + 1e-6)) {
        std::fprintf(stderr, "FAIL %s: timed out with worse incumbent (new %.9g vs old %.9g)\n",
                     inst.name.c_str(), cur.has_solution() ? cur.objective : milp::kInf,
                     old.objective);
        ok = false;
      }
    }
    const auto count = [](long v, bool proved) {
      return proved ? std::to_string(v) : std::to_string(v) + " TO";
    };
    table.add_row({inst.name, util::fmt_double(cur.objective, 3),
                   count(cur.stats.nodes, cur.status == milp::SolveStatus::kOptimal),
                   std::to_string(cur.stats.lp_iterations),
                   count(old.stats.nodes, old.status == milp::SolveStatus::kOptimal),
                   std::to_string(old.stats.lp_iterations),
                   util::fmt_double(cur.stats.time_s, 2), util::fmt_double(old.stats.time_s, 2)});
  }

  if (write) {
    write_baseline(args.gets("baseline"), measured);
    std::printf("baseline written: %s (%zu instances)\n", args.gets("baseline").c_str(),
                measured.size());
    return ok ? 0 : 1;
  }

  if (smoke) {
    const auto baseline = load_baseline(args.gets("baseline"));
    if (baseline.empty()) {
      std::fprintf(stderr, "FAIL: baseline %s missing or unreadable\n",
                   args.gets("baseline").c_str());
      return 1;
    }
    for (const auto& m : measured) {
      const BaselineEntry* base = nullptr;
      for (const auto& b : baseline) {
        if (b.name == m.name) base = &b;
      }
      if (base == nullptr) {
        std::fprintf(stderr, "FAIL %s: not in baseline\n", m.name.c_str());
        ok = false;
        continue;
      }
      if (!objectives_match(m.objective, base->objective)) {
        std::fprintf(stderr, "FAIL %s: objective %.9g != baseline %.9g\n", m.name.c_str(),
                     m.objective, base->objective);
        ok = false;
      }
      // 25% head-room plus an absolute floor so tiny counts don't flap.
      const long node_cap = base->nodes + base->nodes / 4 + 10;
      const long iter_cap = base->lp_iterations + base->lp_iterations / 4 + 50;
      if (m.nodes > node_cap) {
        std::fprintf(stderr, "FAIL %s: nodes %ld > cap %ld (baseline %ld)\n", m.name.c_str(),
                     m.nodes, node_cap, base->nodes);
        ok = false;
      }
      if (m.lp_iterations > iter_cap) {
        std::fprintf(stderr, "FAIL %s: lp_iterations %ld > cap %ld (baseline %ld)\n",
                     m.name.c_str(), m.lp_iterations, iter_cap, base->lp_iterations);
        ok = false;
      }
      std::printf("ok %-16s obj %.6g nodes %ld/%ld iters %ld/%ld\n", m.name.c_str(), m.objective,
                  m.nodes, base->nodes, m.lp_iterations, base->lp_iterations);
    }
    std::printf(ok ? "smoke: PASS\n" : "smoke: FAIL\n");
    return ok ? 0 : 1;
  }

  // --- Lazy separation A/B on the table3 family: the encoder emits only
  // the relaxed skeleton; the linking/disjointness rows enter the LP on
  // demand through the cut pool. Optima must agree with the upfront
  // encoding; the payoff is encoded rows.
  util::Table lazy_table({"Instance", "Rows upfront", "Rows lazy", "Cuts activated",
                          "Sep. rounds", "Nodes up/lazy", "Time up/lazy (s)"});
  for (const auto& [t3n, t3d] : std::vector<std::pair<int, int>>{{30, 10}, {50, 20}, {80, 30}}) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = t3n;
    cfg.end_devices = t3d;
    const auto sc = workloads::make_scalable(cfg);
    EncoderOptions up;
    up.k_star = args.geti("kstar");
    const auto uep = Encoder(*sc->tmpl, sc->spec, up).encode();
    EncoderOptions lz = up;
    lz.lazy_separation = true;
    const auto lep = Encoder(*sc->tmpl, sc->spec, lz).encode();
    milp::SolveOptions lopts = current;
    LazySeparation(*sc->tmpl, lep).install(lopts);

    const std::string name =
        "table3-" + std::to_string(t3n) + "x" + std::to_string(t3d);
    const milp::MipResult ur = milp::solve(uep.model, current);
    const milp::MipResult lr = milp::solve(lep.model, lopts);
    if (ur.has_solution() != lr.has_solution() ||
        (ur.has_solution() && !objectives_match(ur.objective, lr.objective))) {
      std::fprintf(stderr, "FAIL %s: lazy optimum diverges (upfront %.9g vs lazy %.9g)\n",
                   name.c_str(), ur.has_solution() ? ur.objective : milp::kInf,
                   lr.has_solution() ? lr.objective : milp::kInf);
      ok = false;
    }
    lazy_table.add_row(
        {name, std::to_string(uep.stats.num_constrs), std::to_string(lep.stats.num_constrs),
         std::to_string(lr.stats.cuts_lp_rows), std::to_string(lr.stats.cut_rounds),
         std::to_string(ur.stats.nodes) + "/" + std::to_string(lr.stats.nodes),
         util::fmt_double(ur.stats.time_s, 2) + "/" + util::fmt_double(lr.stats.time_s, 2)});
  }

  bench::print_table("Solver profile: production vs legacy configuration", table);
  bench::print_table("Lazy separation A/B: table3 family", lazy_table);
  if (compared > 0) {
    std::printf(
        "geomean reduction (old/new), %d instances solved to optimality by both: "
        "lp_iterations %.2fx, nodes %.2fx, time %.2fx\n",
        compared, std::exp(log_iter_ratio / compared), std::exp(log_node_ratio / compared),
        std::exp(log_time_ratio / compared));
  }
  if (t3_compared > 0) {
    std::printf("geomean reduction, table3 family (%d instances): lp_iterations %.2fx, time %.2fx\n",
                t3_compared, std::exp(t3_log_iter_ratio / t3_compared),
                std::exp(t3_log_time_ratio / t3_compared));
  }
  return ok ? 0 : 1;
}
