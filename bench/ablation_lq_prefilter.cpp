// Ablation A3 (DESIGN.md): the LQ prefilter in Algorithm 1 ("we can
// disregard links with path loss below a certain threshold to ensure that
// all the candidate paths meet the LQ requirements"). Without it, Yen may
// propose candidates over links that cannot meet the RSS bound with any
// component, wasting candidate slots and constraints on dead paths.
#include <cstdio>

#include "bench_common.h"
#include "core/encode/encoder.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"nodes", "50"}, {"devices", "15"}, {"kstar", "8"}, {"time-limit", "45"},
                    {"min-snr", "38"}});

  workloads::ScalableConfig cfg;
  cfg.total_nodes = args.geti("nodes");
  cfg.end_devices = args.geti("devices");
  // A strict SNR bound makes many geometrically-short links infeasible,
  // which is exactly when the prefilter earns its keep.
  cfg.min_snr_db = args.getd("min-snr");
  const auto sc = workloads::make_scalable(cfg);

  util::Table table(
      {"Prefilter", "Candidates", "Constraints", "Status", "$ cost", "Time (s)"});
  for (const bool prefilter : {true, false}) {
    EncoderOptions eo;
    eo.k_star = args.geti("kstar");
    eo.lq_prefilter = prefilter;

    Encoder enc(*sc->tmpl, sc->spec, eo);
    const auto stats = enc.encode().stats;

    Explorer ex(*sc->tmpl, sc->spec);
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = 0.03;
    const auto res = ex.explore(eo, so);

    table.add_row({prefilter ? "on" : "off (ablated)", std::to_string(stats.candidate_paths),
                   std::to_string(stats.num_constrs), milp::to_string(res.status),
                   res.has_solution() ? util::fmt_double(res.architecture.total_cost_usd, 0) : "-",
                   util::fmt_double(res.total_time_s, 1)});
  }
  bench::print_table("Ablation A3: LQ prefilter in Algorithm 1", table);
  return 0;
}
