// Solve-daemon throughput and cold-vs-warm latency harness (EXPERIMENTS.md,
// "Solve server"). Runs an in-process SolveService — same code path as the
// wnetd binary minus stdio — and measures three things:
//
//   1. cold:  first solve of a request key (builds encoder, runs the ladder)
//   2. warm:  the identical request again; must be answered from the session
//             cache with a byte-identical canonical object and strictly lower
//             wall clock (the harness FAILS otherwise — it is the in-process
//             cold-vs-warm gate the CI smoke job runs)
//   3. fleet: N distinct requests over 1..W workers; requests-per-second and
//             a canonical-divergence check across worker counts
//
// --json emits one machine-readable summary object for CI.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "server/protocol.h"
#include "server/solve_service.h"
#include "util/obs/json.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::server;

namespace {

/// Collects every JSONL line the service emits; index results by request id.
struct Collector {
  std::vector<std::string> lines;
  EventSink sink() {
    return [this](const std::string& line) { lines.push_back(line); };
  }
  /// The `result` event for `id`, or empty.
  [[nodiscard]] std::string result_line(const std::string& id) const {
    for (const auto& l : lines) {
      const auto v = util::obs::json_parse(l);
      if (v && v->get_string("event", "") == "result" && v->get_string("id", "") == id) return l;
    }
    return {};
  }
};

/// Raw canonical sub-object text of a result line (for byte comparison).
std::string canonical_of(const std::string& result_line) {
  const auto a = result_line.find("\"canonical\": ");
  const auto b = result_line.rfind(", \"cache_hit\":");
  if (a == std::string::npos || b == std::string::npos || b <= a) return {};
  const auto start = a + std::string("\"canonical\": ").size();
  return result_line.substr(start, b - start);
}

double wall_of(const std::string& result_line) {
  const auto v = util::obs::json_parse(result_line);
  return v ? v->get_number("wall_time_s", -1.0) : -1.0;
}

Request make_request(const std::string& id, const std::string& tmpl, std::vector<int> ladder,
                     double time_limit_s) {
  Request r;
  r.op = Request::Op::kSolve;
  r.id = id;
  r.template_key = tmpl;
  r.ladder = std::move(ladder);
  r.time_limit_s = time_limit_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"template", "scalable:40x15"},
                    {"requests", "8"},
                    {"max-workers", "4"},
                    {"time-limit", "30"},
                    {"json", "0"}});
  const std::string tmpl = args.gets("template");
  const int requests = args.geti("requests");
  const int max_workers = args.geti("max-workers");
  const double limit = args.getd("time-limit");
  const std::vector<int> ladder = {1, 3};

  TemplateRegistry registry;
  if (!registry.known(tmpl)) {
    std::fprintf(stderr, "unknown template: %s\n", tmpl.c_str());
    return 2;
  }

  // --- cold vs warm: the cache gate --------------------------------------
  Collector cw;
  double cold_s = 0.0, warm_s = 0.0;
  std::string cold_canonical, warm_canonical;
  bool warm_hit = false;
  {
    ServiceConfig cfg;
    cfg.workers = 1;
    SolveService svc(registry, cfg, cw.sink());
    svc.submit(make_request("cold", tmpl, ladder, limit));
    svc.wait_idle();
    svc.submit(make_request("warm", tmpl, ladder, limit));
    svc.wait_idle();
    svc.shutdown();
  }
  {
    const std::string cold_line = cw.result_line("cold");
    const std::string warm_line = cw.result_line("warm");
    if (cold_line.empty() || warm_line.empty()) {
      std::fprintf(stderr, "FAIL: missing result event(s)\n");
      return 1;
    }
    cold_s = wall_of(cold_line);
    warm_s = wall_of(warm_line);
    cold_canonical = canonical_of(cold_line);
    warm_canonical = canonical_of(warm_line);
    const auto wv = util::obs::json_parse(warm_line);
    warm_hit = wv && wv->get_bool("cache_hit", false);
  }
  bool ok = true;
  if (!warm_hit) {
    std::fprintf(stderr, "FAIL: warm request was not a cache hit\n");
    ok = false;
  }
  if (warm_canonical.empty() || warm_canonical != cold_canonical) {
    std::fprintf(stderr, "FAIL: warm canonical differs from cold\n");
    ok = false;
  }
  if (!(warm_s < cold_s)) {
    std::fprintf(stderr, "FAIL: warm wall %.6fs not below cold %.6fs\n", warm_s, cold_s);
    ok = false;
  }

  // --- fleet throughput over worker counts -------------------------------
  // Distinct request keys (different ladders) so nothing is served from
  // cache; every worker count must produce the same canonical per key.
  util::Table t({"workers", "requests", "wall_s", "req_per_s"});
  std::map<std::string, std::string> reference;  // id -> canonical @ workers=1
  std::vector<double> fleet_wall;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    Collector fleet;
    util::Stopwatch sw;
    {
      ServiceConfig cfg;
      cfg.workers = workers;
      cfg.queue_limit = requests + 1;
      SolveService svc(registry, cfg, fleet.sink());
      for (int i = 0; i < requests; ++i) {
        // Ladder {1}, {1,2}, {1,2,3}, ... : distinct cache keys, shared prefix.
        std::vector<int> lad;
        for (int k = 1; k <= 1 + i % 4; ++k) lad.push_back(k);
        Request r = make_request("req" + std::to_string(i), tmpl, lad, limit);
        r.use_cache = false;
        svc.submit(r);
      }
      svc.wait_idle();
      svc.shutdown();
    }
    const double wall = sw.seconds();
    fleet_wall.push_back(wall);
    t.add_row({std::to_string(workers), std::to_string(requests), util::fmt_double(wall, 3),
               util::fmt_double(requests / wall, 2)});
    for (int i = 0; i < requests; ++i) {
      const std::string id = "req" + std::to_string(i);
      const std::string canon = canonical_of(fleet.result_line(id));
      if (canon.empty()) {
        std::fprintf(stderr, "FAIL: no result for %s at workers=%d\n", id.c_str(), workers);
        ok = false;
      } else if (workers == 1) {
        reference[id] = canon;
      } else if (reference[id] != canon) {
        std::fprintf(stderr, "FAIL: canonical divergence for %s at workers=%d\n", id.c_str(),
                     workers);
        ok = false;
      }
    }
  }

  if (args.getb("json")) {
    util::obs::JsonWriter w;
    w.begin_object()
        .field("template", tmpl)
        .number_field("cold_s", cold_s)
        .number_field("warm_s", warm_s)
        .field("warm_cache_hit", warm_hit)
        .field("canonical_match", warm_canonical == cold_canonical && !warm_canonical.empty())
        .field("requests", requests);
    w.key("fleet_wall_s").begin_array();
    for (const double s : fleet_wall) w.value(s);
    w.end_array().field("ok", ok);
    std::printf("%s\n", w.end_object().take().c_str());
  } else {
    std::printf("template: %s | ladder {1,3}\n", tmpl.c_str());
    std::printf("cold: %.4fs  warm: %.6fs  speedup: %.0fx  cache_hit: %s  canonical: %s\n",
                cold_s, warm_s, warm_s > 0 ? cold_s / warm_s : 0.0, warm_hit ? "yes" : "no",
                warm_canonical == cold_canonical ? "identical" : "DIVERGED");
    bench::print_table("fleet throughput", t);
  }
  return ok ? 0 : 1;
}
