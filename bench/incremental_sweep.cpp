// A/B harness for the incremental exploration pipeline.
//
// Runs the same K* ladder searches and robust repair loops twice — once
// with fresh per-rung encodes (incremental = false) and once through the
// IncrementalEncoder session (resumable Yen, delta-extended model, previous
// incumbent as MIP start, previous objective as primal cutoff) — and checks
// that both sides agree on chosen_k, objective and deployed architecture
// while the incremental side actually reuses prior work. Prints per-
// instance rows plus the geometric-mean wall-clock reduction.
//
// Modes:
//   (default)          Full sweep: equivalence checks + timing table +
//                      geomean speedups. Exits non-zero on any divergence.
//   --smoke            Quick subset; checks equivalence, actual reuse
//                      (reused_candidates > 0, MIP starts accepted) and
//                      chosen_k/objective against a checked-in baseline.
//                      Timing is reported but never gated (CI runs this).
//   --write-baseline   Regenerates the baseline file at --baseline.
//   --time-budget S    Anytime/budget mode: runs the smoke-subset ladders
//                      through one incremental session under a shared
//                      wall-clock deadline of S seconds (plus the process
//                      SIGINT/SIGTERM token) and prints one strict-JSON row
//                      per ladder plus a final summary row. No A/B or
//                      baseline gates: partial results are the point.
//                      Always exits 0 unless a search crashes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

struct Case {
  std::string name;
  int total_nodes = 0;
  int end_devices = 0;
  int route_replicas = 1;
  /// Paper-style K* selection ladder, sized per instance so every rung
  /// proves optimality within the per-solve limit (a timed-out rung
  /// measures incumbent luck, not pipeline work — see solver_profile's TO
  /// handling).
  std::vector<int> ladder;
  bool smoke = true;  ///< included in the --smoke subset
};

std::vector<Case> build_cases(bool smoke_only) {
  std::vector<Case> out;
  out.push_back({"ladder-30x10", 30, 10, 1, {1, 2, 3, 4, 6, 8, 12, 16}, true});
  out.push_back({"ladder-40x15-r2", 40, 15, 2, {1, 2, 3, 4, 6, 8}, true});
  out.push_back({"ladder-50x20", 50, 20, 1, {1, 2, 3, 4, 6, 8}, true});
  if (!smoke_only) {
    out.push_back({"ladder-45x18", 45, 18, 1, {1, 2, 3, 4, 6, 8}, false});
    out.push_back({"ladder-50x20-r2", 50, 20, 2, {1, 2, 3, 4, 6}, false});
    out.push_back({"ladder-60x25-r2", 60, 25, 2, {1, 2, 3, 4, 6}, false});
  }
  return out;
}

/// Stable identity of a deployment: which template nodes are used, which
/// concrete paths carry each (route, replica), and the deployed cost.
/// Deliberately blind to the component *labels*: cost-equal components are
/// interchangeable at a tied optimum, and a warm-started solve may settle a
/// different (equally optimal) labeling than a cold one.
std::string architecture_signature(const NetworkArchitecture& a) {
  std::ostringstream os;
  std::vector<int> used;
  used.reserve(a.nodes.size());
  for (const auto& n : a.nodes) used.push_back(n.node);
  std::sort(used.begin(), used.end());  // decode order follows the tied labeling
  for (int n : used) os << n << ";";
  os << "|";
  for (const auto& r : a.routes) {
    os << r.route_index << "." << r.replica << "=";
    for (int v : r.path.nodes) os << v << ",";
    os << ";";
  }
  char cost[32];
  std::snprintf(cost, sizeof(cost), "|%.6f", a.total_cost_usd);
  os << cost;
  return os.str();
}

bool objectives_match(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

struct RunMeasure {
  Explorer::KStarSearchResult result;
  double wall_s = 0.0;
  double encode_s = 0.0;   ///< summed over visited rungs
  int reused = 0;          ///< summed reused_candidates over visited rungs
  int mip_starts = 0;      ///< rungs whose solve accepted the MIP start
};

RunMeasure run_ladder(const workloads::Scenario& sc, const std::vector<int>& ladder,
                      bool incremental, double time_limit_s) {
  Explorer::KStarSearchOptions ko;
  ko.ladder = ladder;
  ko.incremental = incremental;
  milp::SolveOptions so;
  so.time_limit_s = time_limit_s;
  const Explorer ex(*sc.tmpl, sc.spec);
  RunMeasure m;
  util::Stopwatch clock;
  m.result = ex.search_k_star(ko, {}, so);
  m.wall_s = clock.seconds();
  for (const auto& [k, r] : m.result.trace) {
    m.encode_s += r.encode_stats.encode_time_s;
    m.reused += r.encode_stats.reused_candidates;
    m.mip_starts += r.solve_stats.mip_start_used ? 1 : 0;
  }
  return m;
}

struct RobustMeasure {
  Explorer::RobustExplorationResult result;
  double wall_s = 0.0;
};

RobustMeasure run_robust(const workloads::Scenario& sc, bool incremental, double time_limit_s) {
  Explorer::RobustExploreOptions ro;
  ro.encoder.k_star = 4;
  ro.solver.time_limit_s = time_limit_s;
  ro.faults.seed = 3;
  ro.faults.max_simultaneous_failures = 1;
  ro.faults.fading_draws = 16;
  ro.faults.fading_sigma_db = 2.0;
  ro.time_budget_s = 10.0 * time_limit_s;
  ro.max_repair_iterations = 6;
  ro.incremental = incremental;
  const Explorer ex(*sc.tmpl, sc.spec);
  RobustMeasure m;
  util::Stopwatch clock;
  m.result = ex.explore_robust(ro);
  m.wall_s = clock.seconds();
  return m;
}

struct BaselineEntry {
  std::string name;
  int chosen_k = 0;
  double objective = 0.0;
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    char name[128] = {0};
    BaselineEntry e;
    if (std::sscanf(line.c_str(), "  {\"name\": \"%127[^\"]\", \"chosen_k\": %d, \"objective\": %lf",
                    name, &e.chosen_k, &e.objective) == 3) {
      e.name = name;
      out.push_back(e);
    }
  }
  return out;
}

void write_baseline(const std::string& path, const std::vector<BaselineEntry>& entries) {
  // One entry per line (the loader is line-oriented), each line produced by
  // the obs writer so the file parses strictly and is locale-immune.
  std::ofstream outf(path);
  outf << "{\"instances\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    wnet::util::obs::JsonWriter w;
    w.begin_object();
    w.field("name", entries[i].name);
    w.field("chosen_k", entries[i].chosen_k);
    w.field("objective", entries[i].objective);
    w.end_object();
    outf << "  " << w.take() << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  outf << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"time-limit", "60"},
                    {"json", "0"},
                    {"trace", ""},
                    {"smoke", "0"},
                    {"write-baseline", "0"},
                    {"baseline", "bench/incremental_sweep_baseline.json"},
                    {"time-budget", "0"}});

  // Ctrl-C / SIGTERM trip the process-wide cancellation token: in-flight
  // ladder searches return their best-so-far and the summary row is still
  // written before exit.
  util::exec::install_interrupt_handlers();

  const bool smoke = args.getb("smoke");
  const bool write = args.getb("write-baseline");
  const double tl = args.getd("time-limit");
  const double budget_s = args.getd("time-budget");

  // --trace out.json: record per-rung / encode / solver spans across the
  // ladder searches and dump a Chrome trace (ui.perfetto.dev) on exit.
  struct TraceDump {
    std::string path;
    ~TraceDump() {
      if (path.empty()) return;
      if (util::obs::TraceRecorder::global().write_chrome_trace(path)) {
        std::printf("trace written: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "FAIL: could not write trace %s\n", path.c_str());
      }
    }
  } trace_dump{args.gets("trace")};
  if (!trace_dump.path.empty()) util::obs::TraceRecorder::global().set_enabled(true);

  const auto cases = build_cases(/*smoke_only=*/smoke || write || budget_s > 0.0);

  if (budget_s > 0.0) {
    // Budget mode. One shared deadline spans every ladder; each search runs
    // the incremental session with the request control threaded through
    // encoder, solver and the ladder scan, so a stop mid-rung still yields
    // a valid partial KStarSearchResult with a termination reason.
    util::exec::ExecControl ctl;
    ctl.deadline = util::exec::Deadline::after(budget_s);
    ctl.token = util::exec::interrupt_token();
    int attempted = 0;
    const char* last_termination = "completed";
    for (const auto& c : cases) {
      if (ctl.stopped()) break;
      workloads::ScalableConfig cfg;
      cfg.total_nodes = c.total_nodes;
      cfg.end_devices = c.end_devices;
      cfg.route_replicas = c.route_replicas;
      const auto sc = workloads::make_scalable(cfg);
      Explorer::KStarSearchOptions ko;
      ko.ladder = c.ladder;
      ko.incremental = true;
      EncoderOptions eo;
      eo.exec = ctl;
      milp::SolveOptions so;
      so.time_limit_s = tl;
      so.exec = ctl;
      const Explorer ex(*sc->tmpl, sc->spec);
      const auto r = ex.search_k_star(ko, eo, so);
      last_termination = util::exec::to_string(r.termination);
      ++attempted;
      util::obs::JsonWriter w;
      w.begin_object();
      w.field("instance", c.name);
      w.field("chosen_k", r.chosen_k);
      w.field("rungs_visited", static_cast<long>(r.trace.size()));
      w.field("termination", util::exec::to_string(r.termination));
      w.key("best").raw(r.best.solver_json());
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    }
    util::obs::JsonWriter w;
    w.begin_object();
    w.field("mode", "budget");
    w.number_field("time_budget_s", budget_s);
    w.field("instances_total", static_cast<long>(cases.size()));
    w.field("instances_attempted", attempted);
    w.field("last_termination", last_termination);
    w.field("interrupted", util::exec::interrupt_token().cancelled());
    w.field("interrupt_signal", util::exec::interrupt_signal());
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    return 0;
  }

  util::Table table({"Instance", "chosen K*", "Obj", "Fresh (s)", "Incr (s)", "Speedup",
                     "Fresh enc (s)", "Incr enc (s)", "Reused", "MIP starts"});
  std::vector<BaselineEntry> measured;
  double log_time_ratio = 0.0;
  double log_encode_ratio = 0.0;
  int compared = 0;
  int encode_compared = 0;
  int total_reused = 0;
  int total_mip_starts = 0;
  bool ok = true;

  for (const auto& c : cases) {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = c.total_nodes;
    cfg.end_devices = c.end_devices;
    cfg.route_replicas = c.route_replicas;
    const auto sc = workloads::make_scalable(cfg);

    const RunMeasure fresh = run_ladder(*sc, c.ladder, /*incremental=*/false, tl);
    const RunMeasure incr = run_ladder(*sc, c.ladder, /*incremental=*/true, tl);

    if (!fresh.result.best.has_solution() || !incr.result.best.has_solution()) {
      std::fprintf(stderr, "FAIL %s: no solution (fresh %s, incremental %s)\n", c.name.c_str(),
                   milp::to_string(fresh.result.best.status),
                   milp::to_string(incr.result.best.status));
      ok = false;
      continue;
    }
    // Equivalence gate: when every visited rung proved optimality on both
    // sides, the session must not change WHAT the ladder finds — only how
    // fast it finds it. A timed-out rung reports incumbent luck rather
    // than a proven optimum, so those instances only need the incremental
    // side to be at least as good an anytime search.
    const auto all_proved = [](const Explorer::KStarSearchResult& r) {
      for (const auto& [k, er] : r.trace) {
        if (er.status != milp::SolveStatus::kOptimal) return false;
      }
      return true;
    };
    const bool proved = all_proved(fresh.result) && all_proved(incr.result);
    if (proved) {
      if (incr.result.chosen_k != fresh.result.chosen_k) {
        std::fprintf(stderr, "FAIL %s: chosen_k %d (incremental) != %d (fresh)\n", c.name.c_str(),
                     incr.result.chosen_k, fresh.result.chosen_k);
        ok = false;
      }
      if (!objectives_match(incr.result.best.objective, fresh.result.best.objective)) {
        std::fprintf(stderr, "FAIL %s: objective %.9g (incremental) != %.9g (fresh)\n",
                     c.name.c_str(), incr.result.best.objective, fresh.result.best.objective);
        ok = false;
      }
      if (architecture_signature(incr.result.best.architecture) !=
          architecture_signature(fresh.result.best.architecture)) {
        std::fprintf(stderr, "FAIL %s: architectures diverge\n  fresh: %s\n  incr:  %s\n",
                     c.name.c_str(), architecture_signature(fresh.result.best.architecture).c_str(),
                     architecture_signature(incr.result.best.architecture).c_str());
        ok = false;
      }
    } else if (incr.result.best.objective > fresh.result.best.objective +
                                                1e-6 * std::max(1.0, std::abs(fresh.result.best.objective))) {
      std::fprintf(stderr, "FAIL %s: timed out with worse incumbent (incremental %.9g vs fresh %.9g)\n",
                   c.name.c_str(), incr.result.best.objective, fresh.result.best.objective);
      ok = false;
    }
    total_reused += incr.reused;
    total_mip_starts += incr.mip_starts;
    if (proved) {
      // Timed-out instances stay out of the baseline and the geomeans:
      // their timings measure the limit, not the work.
      measured.push_back({c.name, incr.result.chosen_k, incr.result.best.objective});
      log_time_ratio += std::log(std::max(1e-4, fresh.wall_s) / std::max(1e-4, incr.wall_s));
      log_encode_ratio += std::log(std::max(1e-5, fresh.encode_s) / std::max(1e-5, incr.encode_s));
      ++compared;
      ++encode_compared;
    }
    table.add_row({c.name, std::to_string(incr.result.chosen_k) + (proved ? "" : " TO"),
                   util::fmt_double(incr.result.best.objective, 3), util::fmt_double(fresh.wall_s, 3),
                   util::fmt_double(incr.wall_s, 3),
                   util::fmt_double(fresh.wall_s / std::max(1e-4, incr.wall_s), 2) + "x",
                   util::fmt_double(fresh.encode_s, 3), util::fmt_double(incr.encode_s, 3),
                   std::to_string(incr.reused), std::to_string(incr.mip_starts)});
    if (args.getb("json")) {
      util::obs::JsonWriter w;
      w.begin_object();
      w.field("instance", c.name);
      w.number_field("fresh_s", fresh.wall_s);
      w.number_field("incremental_s", incr.wall_s);
      w.field("reused_candidates", incr.reused);
      w.field("mip_starts", incr.mip_starts);
      w.key("incremental").raw(incr.result.best.solver_json());
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    }
  }

  // Robust repair loop A/B on the smallest case: kAvoid hardenings append
  // in place instead of re-encoding, and the trajectory must not change.
  {
    workloads::ScalableConfig cfg;
    cfg.total_nodes = 30;
    cfg.end_devices = 10;
    cfg.route_replicas = 1;
    const auto sc = workloads::make_scalable(cfg);
    const RobustMeasure fresh = run_robust(*sc, /*incremental=*/false, tl);
    const RobustMeasure incr = run_robust(*sc, /*incremental=*/true, tl);
    if (fresh.result.best.has_solution() && incr.result.best.has_solution()) {
      if (incr.result.robust != fresh.result.robust ||
          !objectives_match(incr.result.best.objective, fresh.result.best.objective)) {
        std::fprintf(stderr,
                     "FAIL repair-30x10: trajectories diverge (robust %d vs %d, obj %.9g vs %.9g)\n",
                     incr.result.robust, fresh.result.robust, incr.result.best.objective,
                     fresh.result.best.objective);
        ok = false;
      }
      // The repair row gates equivalence only: its wall clock is dominated
      // by fault campaigns and hardened solves, which the session cannot
      // shrink — only the per-iteration re-encode goes away.
      measured.push_back({"repair-30x10", incr.result.iterations, incr.result.best.objective});
      table.add_row({"repair-30x10", "-", util::fmt_double(incr.result.best.objective, 3),
                     util::fmt_double(fresh.wall_s, 3), util::fmt_double(incr.wall_s, 3),
                     util::fmt_double(fresh.wall_s / std::max(1e-4, incr.wall_s), 2) + "x",
                     "-", "-", "-", "-"});
    } else {
      std::fprintf(stderr, "FAIL repair-30x10: no solution on one side\n");
      ok = false;
    }
  }

  if (total_reused <= 0) {
    std::fprintf(stderr, "FAIL: incremental runs reused no candidates — sessions degenerated "
                         "into rebuild-every-rung\n");
    ok = false;
  }
  if (total_mip_starts <= 0) {
    std::fprintf(stderr, "FAIL: no rung accepted a carried MIP start\n");
    ok = false;
  }

  if (write) {
    write_baseline(args.gets("baseline"), measured);
    std::printf("baseline written: %s (%zu instances)\n", args.gets("baseline").c_str(),
                measured.size());
    return ok ? 0 : 1;
  }
  if (smoke) {
    const auto baseline = load_baseline(args.gets("baseline"));
    if (baseline.empty()) {
      std::fprintf(stderr, "FAIL: baseline %s missing or unreadable\n", args.gets("baseline").c_str());
      return 1;
    }
    for (const auto& m : measured) {
      const BaselineEntry* base = nullptr;
      for (const auto& b : baseline) {
        if (b.name == m.name) base = &b;
      }
      if (base == nullptr) {
        std::fprintf(stderr, "FAIL %s: not in baseline\n", m.name.c_str());
        ok = false;
        continue;
      }
      if (m.chosen_k != base->chosen_k || !objectives_match(m.objective, base->objective)) {
        std::fprintf(stderr, "FAIL %s: chosen_k/objective %d/%.9g != baseline %d/%.9g\n",
                     m.name.c_str(), m.chosen_k, m.objective, base->chosen_k, base->objective);
        ok = false;
      } else {
        std::printf("ok %-16s chosen_k %d obj %.6g\n", m.name.c_str(), m.chosen_k, m.objective);
      }
    }
    std::printf(ok ? "smoke: PASS\n" : "smoke: FAIL\n");
    return ok ? 0 : 1;
  }

  bench::print_table("Incremental exploration pipeline: fresh vs session re-use", table);
  if (compared > 0) {
    std::printf("geomean wall-clock reduction (fresh/incremental), %d ladder runs: %.2fx\n",
                compared, std::exp(log_time_ratio / compared));
    std::printf("geomean encode-time reduction, %d ladder runs: %.2fx\n", encode_compared,
                std::exp(log_encode_ratio / std::max(1, encode_compared)));
  }
  std::printf("total reused candidates: %d, accepted MIP starts: %d\n", total_reused,
              total_mip_starts);
  return ok ? 0 : 1;
}
