// Ablation A2 (DESIGN.md): the systematic K* selection rule of paper
// Sec. 4.3 — walk K* up a ladder, stop when the objective stops improving
// or the run time crosses a threshold. Prints the search trace and which
// K* the rule settles on.
#include <cstdio>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"nodes", "40"}, {"devices", "12"}, {"time-limit", "30"},
                    {"time-threshold", "60"}, {"threads", "1"}});

  workloads::ScalableConfig cfg;
  cfg.total_nodes = args.geti("nodes");
  cfg.end_devices = args.geti("devices");
  const auto sc = workloads::make_scalable(cfg);

  Explorer ex(*sc->tmpl, sc->spec);
  Explorer::KStarSearchOptions ko;
  ko.ladder = {1, 3, 5, 10, 20};
  ko.time_threshold_s = args.getd("time-threshold");
  ko.threads = util::resolve_threads(args.geti("threads"));  // rungs fan out; 0 = all cores
  milp::SolveOptions so;
  so.time_limit_s = args.getd("time-limit");
  so.rel_gap = 0.02;
  const auto sr = ex.search_k_star(ko, {}, so);

  util::Table table({"K*", "Status", "$ cost", "Time (s)", "Chosen"});
  for (const auto& [k, r] : sr.trace) {
    table.add_row({std::to_string(k), milp::to_string(r.status),
                   r.has_solution() ? util::fmt_double(r.objective, 0) : "-",
                   util::fmt_double(r.total_time_s, 1), k == sr.chosen_k ? "<--" : ""});
  }
  bench::print_table("Ablation A2: systematic K* selection (Sec. 4.3)", table);
  std::printf("rule settled on K* = %d\n", sr.chosen_k);
  return 0;
}
