// Reproduces Figure 1 of the paper as SVG files:
//   fig1a_template.svg      the data-collection template (sensors, base
//                           station, candidate relay locations)
//   fig1b_topology.svg      the synthesized data-collection topology
//   fig1c_localization.svg  evaluation points and generated anchor placement
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "core/explorer.h"
#include "core/render.h"
#include "core/workloads/scenarios.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  bench::Args args(argc, argv,
                   {{"sensors", "12"},
                    {"gx", "6"},
                    {"gy", "5"},
                    {"agx", "8"},
                    {"agy", "5"},
                    {"time-limit", "45"},
                    {"paper", "0"}});

  // --- Fig. 1a + 1b: data collection.
  workloads::DataCollectionConfig dcfg;
  dcfg.sensors = args.getb("paper") ? 35 : args.geti("sensors");
  dcfg.relay_grid_x = args.getb("paper") ? 10 : args.geti("gx");
  dcfg.relay_grid_y = args.getb("paper") ? 10 : args.geti("gy");
  {
    const auto sc = workloads::make_data_collection(dcfg);
    std::ofstream("fig1a_template.svg") << render_template_svg(*sc->tmpl, sc->plan, sc->spec);
    std::printf("wrote fig1a_template.svg (%d nodes)\n", sc->tmpl->num_nodes());

    Explorer ex(*sc->tmpl, sc->spec);
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = 0.03;
    const auto res = ex.explore({}, so);
    if (res.has_solution()) {
      std::ofstream("fig1b_topology.svg")
          << render_svg(res.architecture, *sc->tmpl, sc->plan, sc->spec);
      std::printf("wrote fig1b_topology.svg (%s, $%.0f, %d nodes)\n",
                  milp::to_string(res.status), res.architecture.total_cost_usd,
                  res.architecture.num_nodes());
    } else {
      std::printf("fig1b: no solution (%s)\n", milp::to_string(res.status));
    }
  }

  // --- Fig. 1c: localization placement.
  workloads::LocalizationConfig lcfg;
  lcfg.anchor_grid_x = args.getb("paper") ? 15 : args.geti("agx");
  lcfg.anchor_grid_y = args.getb("paper") ? 10 : args.geti("agy");
  lcfg.eval_grid_x = args.getb("paper") ? 15 : 7;
  lcfg.eval_grid_y = args.getb("paper") ? 9 : 5;
  {
    const auto sc = workloads::make_localization(lcfg);
    Explorer ex(*sc->tmpl, sc->spec);
    milp::SolveOptions so;
    so.time_limit_s = args.getd("time-limit");
    so.rel_gap = 0.02;
    const auto res = ex.explore({}, so);
    if (res.has_solution()) {
      std::ofstream("fig1c_localization.svg")
          << render_svg(res.architecture, *sc->tmpl, sc->plan, sc->spec);
      std::printf("wrote fig1c_localization.svg (%s, %d anchors, avg reach %.2f)\n",
                  milp::to_string(res.status), res.architecture.num_nodes(),
                  res.architecture.avg_reachable_anchors);
    } else {
      std::printf("fig1c: no solution (%s)\n", milp::to_string(res.status));
    }
  }
  return 0;
}
