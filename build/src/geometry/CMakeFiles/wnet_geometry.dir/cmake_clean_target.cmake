file(REMOVE_RECURSE
  "libwnet_geometry.a"
)
