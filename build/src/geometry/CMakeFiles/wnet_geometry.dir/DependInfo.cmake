
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/floorplan.cpp" "src/geometry/CMakeFiles/wnet_geometry.dir/floorplan.cpp.o" "gcc" "src/geometry/CMakeFiles/wnet_geometry.dir/floorplan.cpp.o.d"
  "/root/repo/src/geometry/segment.cpp" "src/geometry/CMakeFiles/wnet_geometry.dir/segment.cpp.o" "gcc" "src/geometry/CMakeFiles/wnet_geometry.dir/segment.cpp.o.d"
  "/root/repo/src/geometry/svg.cpp" "src/geometry/CMakeFiles/wnet_geometry.dir/svg.cpp.o" "gcc" "src/geometry/CMakeFiles/wnet_geometry.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
