# Empty compiler generated dependencies file for wnet_geometry.
# This may be replaced when dependencies are built.
