file(REMOVE_RECURSE
  "CMakeFiles/wnet_geometry.dir/floorplan.cpp.o"
  "CMakeFiles/wnet_geometry.dir/floorplan.cpp.o.d"
  "CMakeFiles/wnet_geometry.dir/segment.cpp.o"
  "CMakeFiles/wnet_geometry.dir/segment.cpp.o.d"
  "CMakeFiles/wnet_geometry.dir/svg.cpp.o"
  "CMakeFiles/wnet_geometry.dir/svg.cpp.o.d"
  "libwnet_geometry.a"
  "libwnet_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
