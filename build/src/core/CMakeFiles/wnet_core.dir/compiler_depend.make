# Empty compiler generated dependencies file for wnet_core.
# This may be replaced when dependencies are built.
