file(REMOVE_RECURSE
  "CMakeFiles/wnet_core.dir/analysis.cpp.o"
  "CMakeFiles/wnet_core.dir/analysis.cpp.o.d"
  "CMakeFiles/wnet_core.dir/encode/encoder.cpp.o"
  "CMakeFiles/wnet_core.dir/encode/encoder.cpp.o.d"
  "CMakeFiles/wnet_core.dir/explorer.cpp.o"
  "CMakeFiles/wnet_core.dir/explorer.cpp.o.d"
  "CMakeFiles/wnet_core.dir/library.cpp.o"
  "CMakeFiles/wnet_core.dir/library.cpp.o.d"
  "CMakeFiles/wnet_core.dir/network_template.cpp.o"
  "CMakeFiles/wnet_core.dir/network_template.cpp.o.d"
  "CMakeFiles/wnet_core.dir/render.cpp.o"
  "CMakeFiles/wnet_core.dir/render.cpp.o.d"
  "CMakeFiles/wnet_core.dir/resilience.cpp.o"
  "CMakeFiles/wnet_core.dir/resilience.cpp.o.d"
  "CMakeFiles/wnet_core.dir/solution.cpp.o"
  "CMakeFiles/wnet_core.dir/solution.cpp.o.d"
  "CMakeFiles/wnet_core.dir/spec/parser.cpp.o"
  "CMakeFiles/wnet_core.dir/spec/parser.cpp.o.d"
  "CMakeFiles/wnet_core.dir/workloads/scenarios.cpp.o"
  "CMakeFiles/wnet_core.dir/workloads/scenarios.cpp.o.d"
  "libwnet_core.a"
  "libwnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
