
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/wnet_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/encode/encoder.cpp" "src/core/CMakeFiles/wnet_core.dir/encode/encoder.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/encode/encoder.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/wnet_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/library.cpp" "src/core/CMakeFiles/wnet_core.dir/library.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/library.cpp.o.d"
  "/root/repo/src/core/network_template.cpp" "src/core/CMakeFiles/wnet_core.dir/network_template.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/network_template.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/wnet_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/render.cpp.o.d"
  "/root/repo/src/core/resilience.cpp" "src/core/CMakeFiles/wnet_core.dir/resilience.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/resilience.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/wnet_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/solution.cpp.o.d"
  "/root/repo/src/core/spec/parser.cpp" "src/core/CMakeFiles/wnet_core.dir/spec/parser.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/spec/parser.cpp.o.d"
  "/root/repo/src/core/workloads/scenarios.cpp" "src/core/CMakeFiles/wnet_core.dir/workloads/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/wnet_core.dir/workloads/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/milp/CMakeFiles/wnet_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wnet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wnet_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wnet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
