file(REMOVE_RECURSE
  "libwnet_core.a"
)
