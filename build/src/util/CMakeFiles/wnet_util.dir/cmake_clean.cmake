file(REMOVE_RECURSE
  "CMakeFiles/wnet_util.dir/strings.cpp.o"
  "CMakeFiles/wnet_util.dir/strings.cpp.o.d"
  "CMakeFiles/wnet_util.dir/table.cpp.o"
  "CMakeFiles/wnet_util.dir/table.cpp.o.d"
  "libwnet_util.a"
  "libwnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
