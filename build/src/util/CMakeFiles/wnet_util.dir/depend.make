# Empty dependencies file for wnet_util.
# This may be replaced when dependencies are built.
