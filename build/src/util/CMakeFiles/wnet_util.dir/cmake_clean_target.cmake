file(REMOVE_RECURSE
  "libwnet_util.a"
)
