file(REMOVE_RECURSE
  "libwnet_channel.a"
)
