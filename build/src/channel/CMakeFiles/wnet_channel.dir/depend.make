# Empty dependencies file for wnet_channel.
# This may be replaced when dependencies are built.
