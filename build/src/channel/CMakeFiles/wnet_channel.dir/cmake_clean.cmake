file(REMOVE_RECURSE
  "CMakeFiles/wnet_channel.dir/link_metrics.cpp.o"
  "CMakeFiles/wnet_channel.dir/link_metrics.cpp.o.d"
  "CMakeFiles/wnet_channel.dir/propagation.cpp.o"
  "CMakeFiles/wnet_channel.dir/propagation.cpp.o.d"
  "libwnet_channel.a"
  "libwnet_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
