file(REMOVE_RECURSE
  "libwnet_graph.a"
)
