# Empty dependencies file for wnet_graph.
# This may be replaced when dependencies are built.
