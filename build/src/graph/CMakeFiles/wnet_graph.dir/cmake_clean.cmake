file(REMOVE_RECURSE
  "CMakeFiles/wnet_graph.dir/connectivity.cpp.o"
  "CMakeFiles/wnet_graph.dir/connectivity.cpp.o.d"
  "CMakeFiles/wnet_graph.dir/digraph.cpp.o"
  "CMakeFiles/wnet_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/wnet_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/wnet_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/wnet_graph.dir/yen.cpp.o"
  "CMakeFiles/wnet_graph.dir/yen.cpp.o.d"
  "libwnet_graph.a"
  "libwnet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
