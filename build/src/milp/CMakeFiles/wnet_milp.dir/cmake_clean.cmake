file(REMOVE_RECURSE
  "CMakeFiles/wnet_milp.dir/expr.cpp.o"
  "CMakeFiles/wnet_milp.dir/expr.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/io.cpp.o"
  "CMakeFiles/wnet_milp.dir/io.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/linearize.cpp.o"
  "CMakeFiles/wnet_milp.dir/linearize.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/model.cpp.o"
  "CMakeFiles/wnet_milp.dir/model.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/presolve.cpp.o"
  "CMakeFiles/wnet_milp.dir/presolve.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/simplex/dual_simplex.cpp.o"
  "CMakeFiles/wnet_milp.dir/simplex/dual_simplex.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/simplex/lu.cpp.o"
  "CMakeFiles/wnet_milp.dir/simplex/lu.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/simplex/standard_lp.cpp.o"
  "CMakeFiles/wnet_milp.dir/simplex/standard_lp.cpp.o.d"
  "CMakeFiles/wnet_milp.dir/solver.cpp.o"
  "CMakeFiles/wnet_milp.dir/solver.cpp.o.d"
  "libwnet_milp.a"
  "libwnet_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
