file(REMOVE_RECURSE
  "libwnet_milp.a"
)
