# Empty compiler generated dependencies file for wnet_milp.
# This may be replaced when dependencies are built.
