
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/expr.cpp" "src/milp/CMakeFiles/wnet_milp.dir/expr.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/expr.cpp.o.d"
  "/root/repo/src/milp/io.cpp" "src/milp/CMakeFiles/wnet_milp.dir/io.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/io.cpp.o.d"
  "/root/repo/src/milp/linearize.cpp" "src/milp/CMakeFiles/wnet_milp.dir/linearize.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/linearize.cpp.o.d"
  "/root/repo/src/milp/model.cpp" "src/milp/CMakeFiles/wnet_milp.dir/model.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/model.cpp.o.d"
  "/root/repo/src/milp/presolve.cpp" "src/milp/CMakeFiles/wnet_milp.dir/presolve.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/presolve.cpp.o.d"
  "/root/repo/src/milp/simplex/dual_simplex.cpp" "src/milp/CMakeFiles/wnet_milp.dir/simplex/dual_simplex.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/simplex/dual_simplex.cpp.o.d"
  "/root/repo/src/milp/simplex/lu.cpp" "src/milp/CMakeFiles/wnet_milp.dir/simplex/lu.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/simplex/lu.cpp.o.d"
  "/root/repo/src/milp/simplex/standard_lp.cpp" "src/milp/CMakeFiles/wnet_milp.dir/simplex/standard_lp.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/simplex/standard_lp.cpp.o.d"
  "/root/repo/src/milp/solver.cpp" "src/milp/CMakeFiles/wnet_milp.dir/solver.cpp.o" "gcc" "src/milp/CMakeFiles/wnet_milp.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
