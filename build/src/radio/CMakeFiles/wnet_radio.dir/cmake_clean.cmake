file(REMOVE_RECURSE
  "CMakeFiles/wnet_radio.dir/csma.cpp.o"
  "CMakeFiles/wnet_radio.dir/csma.cpp.o.d"
  "CMakeFiles/wnet_radio.dir/energy.cpp.o"
  "CMakeFiles/wnet_radio.dir/energy.cpp.o.d"
  "libwnet_radio.a"
  "libwnet_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wnet_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
