
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/csma.cpp" "src/radio/CMakeFiles/wnet_radio.dir/csma.cpp.o" "gcc" "src/radio/CMakeFiles/wnet_radio.dir/csma.cpp.o.d"
  "/root/repo/src/radio/energy.cpp" "src/radio/CMakeFiles/wnet_radio.dir/energy.cpp.o" "gcc" "src/radio/CMakeFiles/wnet_radio.dir/energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
