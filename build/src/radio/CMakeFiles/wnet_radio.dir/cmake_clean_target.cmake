file(REMOVE_RECURSE
  "libwnet_radio.a"
)
