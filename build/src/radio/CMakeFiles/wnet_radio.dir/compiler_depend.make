# Empty compiler generated dependencies file for wnet_radio.
# This may be replaced when dependencies are built.
