file(REMOVE_RECURSE
  "CMakeFiles/table3_scalability.dir/table3_scalability.cpp.o"
  "CMakeFiles/table3_scalability.dir/table3_scalability.cpp.o.d"
  "table3_scalability"
  "table3_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
