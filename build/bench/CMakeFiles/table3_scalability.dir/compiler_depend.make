# Empty compiler generated dependencies file for table3_scalability.
# This may be replaced when dependencies are built.
