# Empty dependencies file for table4_kstar_sweep.
# This may be replaced when dependencies are built.
