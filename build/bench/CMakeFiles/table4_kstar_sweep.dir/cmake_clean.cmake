file(REMOVE_RECURSE
  "CMakeFiles/table4_kstar_sweep.dir/table4_kstar_sweep.cpp.o"
  "CMakeFiles/table4_kstar_sweep.dir/table4_kstar_sweep.cpp.o.d"
  "table4_kstar_sweep"
  "table4_kstar_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_kstar_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
