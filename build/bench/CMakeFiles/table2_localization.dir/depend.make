# Empty dependencies file for table2_localization.
# This may be replaced when dependencies are built.
