file(REMOVE_RECURSE
  "CMakeFiles/table2_localization.dir/table2_localization.cpp.o"
  "CMakeFiles/table2_localization.dir/table2_localization.cpp.o.d"
  "table2_localization"
  "table2_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
