file(REMOVE_RECURSE
  "CMakeFiles/ablation_kstar_search.dir/ablation_kstar_search.cpp.o"
  "CMakeFiles/ablation_kstar_search.dir/ablation_kstar_search.cpp.o.d"
  "ablation_kstar_search"
  "ablation_kstar_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kstar_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
