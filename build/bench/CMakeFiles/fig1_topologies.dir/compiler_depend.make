# Empty compiler generated dependencies file for fig1_topologies.
# This may be replaced when dependencies are built.
