file(REMOVE_RECURSE
  "CMakeFiles/fig1_topologies.dir/fig1_topologies.cpp.o"
  "CMakeFiles/fig1_topologies.dir/fig1_topologies.cpp.o.d"
  "fig1_topologies"
  "fig1_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
