# Empty dependencies file for table1_data_collection.
# This may be replaced when dependencies are built.
