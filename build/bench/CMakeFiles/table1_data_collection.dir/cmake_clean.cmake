file(REMOVE_RECURSE
  "CMakeFiles/table1_data_collection.dir/table1_data_collection.cpp.o"
  "CMakeFiles/table1_data_collection.dir/table1_data_collection.cpp.o.d"
  "table1_data_collection"
  "table1_data_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_data_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
