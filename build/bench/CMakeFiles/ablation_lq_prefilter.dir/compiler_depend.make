# Empty compiler generated dependencies file for ablation_lq_prefilter.
# This may be replaced when dependencies are built.
