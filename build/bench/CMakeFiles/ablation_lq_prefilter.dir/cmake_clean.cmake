file(REMOVE_RECURSE
  "CMakeFiles/ablation_lq_prefilter.dir/ablation_lq_prefilter.cpp.o"
  "CMakeFiles/ablation_lq_prefilter.dir/ablation_lq_prefilter.cpp.o.d"
  "ablation_lq_prefilter"
  "ablation_lq_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lq_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
