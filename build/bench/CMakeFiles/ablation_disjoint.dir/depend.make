# Empty dependencies file for ablation_disjoint.
# This may be replaced when dependencies are built.
