file(REMOVE_RECURSE
  "CMakeFiles/ablation_disjoint.dir/ablation_disjoint.cpp.o"
  "CMakeFiles/ablation_disjoint.dir/ablation_disjoint.cpp.o.d"
  "ablation_disjoint"
  "ablation_disjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
