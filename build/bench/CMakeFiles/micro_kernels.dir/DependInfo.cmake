
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_kernels.cpp" "bench/CMakeFiles/micro_kernels.dir/micro_kernels.cpp.o" "gcc" "bench/CMakeFiles/micro_kernels.dir/micro_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/wnet_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wnet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wnet_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wnet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
