
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/channel/channel_test.cpp" "tests/CMakeFiles/wnet_tests.dir/channel/channel_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/channel/channel_test.cpp.o.d"
  "/root/repo/tests/channel/propagation_extra_test.cpp" "tests/CMakeFiles/wnet_tests.dir/channel/propagation_extra_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/channel/propagation_extra_test.cpp.o.d"
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/encoder_property_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/encoder_property_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/encoder_property_test.cpp.o.d"
  "/root/repo/tests/core/encoder_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/encoder_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/encoder_test.cpp.o.d"
  "/root/repo/tests/core/explorer_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/explorer_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/explorer_test.cpp.o.d"
  "/root/repo/tests/core/library_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/library_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/library_test.cpp.o.d"
  "/root/repo/tests/core/lq_metrics_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/lq_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/lq_metrics_test.cpp.o.d"
  "/root/repo/tests/core/resilience_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/resilience_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/resilience_test.cpp.o.d"
  "/root/repo/tests/core/solution_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/solution_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/solution_test.cpp.o.d"
  "/root/repo/tests/core/spec_parser_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/spec_parser_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/spec_parser_test.cpp.o.d"
  "/root/repo/tests/core/workloads_test.cpp" "tests/CMakeFiles/wnet_tests.dir/core/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/core/workloads_test.cpp.o.d"
  "/root/repo/tests/geometry/geometry_test.cpp" "tests/CMakeFiles/wnet_tests.dir/geometry/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/geometry/geometry_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/wnet_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/milp/expr_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/expr_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/expr_test.cpp.o.d"
  "/root/repo/tests/milp/io_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/io_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/io_test.cpp.o.d"
  "/root/repo/tests/milp/linearize_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/linearize_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/linearize_test.cpp.o.d"
  "/root/repo/tests/milp/lu_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/lu_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/lu_test.cpp.o.d"
  "/root/repo/tests/milp/presolve_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/presolve_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/presolve_test.cpp.o.d"
  "/root/repo/tests/milp/simplex_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/simplex_test.cpp.o.d"
  "/root/repo/tests/milp/solver_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/solver_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/solver_test.cpp.o.d"
  "/root/repo/tests/milp/standard_lp_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/standard_lp_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/standard_lp_test.cpp.o.d"
  "/root/repo/tests/milp/warm_start_test.cpp" "tests/CMakeFiles/wnet_tests.dir/milp/warm_start_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/milp/warm_start_test.cpp.o.d"
  "/root/repo/tests/radio/csma_test.cpp" "tests/CMakeFiles/wnet_tests.dir/radio/csma_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/radio/csma_test.cpp.o.d"
  "/root/repo/tests/radio/radio_test.cpp" "tests/CMakeFiles/wnet_tests.dir/radio/radio_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/radio/radio_test.cpp.o.d"
  "/root/repo/tests/util/util_test.cpp" "tests/CMakeFiles/wnet_tests.dir/util/util_test.cpp.o" "gcc" "tests/CMakeFiles/wnet_tests.dir/util/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/wnet_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/wnet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wnet_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wnet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
