# Empty dependencies file for wnet_tests.
# This may be replaced when dependencies are built.
