file(REMOVE_RECURSE
  "CMakeFiles/localization.dir/localization.cpp.o"
  "CMakeFiles/localization.dir/localization.cpp.o.d"
  "localization"
  "localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
