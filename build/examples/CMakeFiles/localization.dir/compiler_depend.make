# Empty compiler generated dependencies file for localization.
# This may be replaced when dependencies are built.
