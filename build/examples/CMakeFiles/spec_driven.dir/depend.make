# Empty dependencies file for spec_driven.
# This may be replaced when dependencies are built.
